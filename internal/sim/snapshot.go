package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/snapshot"
	"repro/internal/spare"
	"repro/internal/stats"
	"repro/internal/vector"
)

// This file is the checkpoint layer: Save serializes the complete
// simulator state at an event boundary, Restore rebuilds a Sim that
// continues the run bit-exactly — same dispatch order, same random draws,
// same trace bytes, same final CSV. The hard part is the calendar queue
// (closures don't serialize); the engine's typed event tags carry enough
// identity to rebuild every callback over the restored state, and
// preserved sequence numbers keep the (at, seq) dispatch order intact.
//
// What is deliberately NOT in a snapshot:
//   - engine bucket geometry and the adaptive-width history (dispatch
//     order is total in (at, seq); any geometry replays it identically);
//   - the core.Context caches and the NHPP folded-phase cache (pure
//     functions of restored state, rebuilt lazily and bit-identically);
//   - the obs metrics registry (counters/gauges restart at zero in a
//     resumed process; the determinism contract covers the trace and the
//     result CSVs, not the diagnostic registry dump);
//   - reqOf and the boot-preference order (derived from Config).

// pmState is one PM's mutable state. Used and Reserved are recomputed on
// restore by re-hosting VMs and re-applying holds; the snapshot still
// records them and the loader verifies bit-equality, turning any
// serialization drift into a loud error instead of a diverging resume.
type pmState struct {
	ID          cluster.PMID `json:"id"`
	State       int          `json:"state"`
	Reliability float64      `json:"rel"`
	Failures    int          `json:"failures,omitempty"`
	Used        vector.V     `json:"used"`
	Reserved    vector.V     `json:"reserved,omitempty"`
}

// vmState is one live (placed or queued) VM.
type vmState struct {
	ID         cluster.VMID `json:"id"`
	Demand     vector.V     `json:"demand"`
	Est        float64      `json:"est"`
	Actual     float64      `json:"actual"`
	Submit     float64      `json:"submit"`
	Start      float64      `json:"start"`
	Finish     float64      `json:"finish"`
	State      int          `json:"state"`
	Host       cluster.PMID `json:"host"`
	Migrations int          `json:"migrations,omitempty"`
}

// holdState is one in-flight timed migration's source-side reservation.
// The cutover event itself lives in the engine state (evMigCutover).
type holdState struct {
	VM     cluster.VMID `json:"vm"`
	Source cluster.PMID `json:"source"`
	Demand vector.V     `json:"demand"`
}

// moveState carries one executed migration. Gain is formatted as a string
// because the rescue-migration path records +Inf, which JSON numbers
// cannot represent; strconv round-trips all float64 values exactly.
type moveState struct {
	VM    cluster.VMID `json:"vm"`
	From  cluster.PMID `json:"from"`
	To    cluster.PMID `json:"to"`
	Gain  string       `json:"gain"`
	Round int          `json:"round"`
}

// simState is the complete serializable run state.
type simState struct {
	Engine      EngineState              `json:"engine"`
	PMs         []pmState                `json:"pms"`
	VMs         []vmState                `json:"vms"`
	Queue       []cluster.VMID           `json:"queue,omitempty"`
	BootReadyAt map[cluster.PMID]float64 `json:"boot_ready,omitempty"`
	Holds       []holdState              `json:"holds,omitempty"`
	Meter       power.MeterState         `json:"meter"`
	Spare       *spare.State             `json:"spare,omitempty"`
	FailRNG     *stats.StreamState       `json:"fail_rng,omitempty"`
	PlacerRNG   *stats.StreamState       `json:"placer_rng,omitempty"`
	Arrived     int                      `json:"arrived"`
	TickRan     bool                     `json:"tick_ran,omitempty"`
	SpareTarget int                      `json:"spare_target"`
	Boots       int                      `json:"boots"`
	QueuedCount int                      `json:"queued_count"`
	Waits       []float64                `json:"waits,omitempty"`
	Completed   int                      `json:"completed"`
	Rejected    int                      `json:"rejected"`
	Failures    int                      `json:"failures"`
	Moves       []moveState              `json:"moves,omitempty"`
	SparePlans  []spare.Plan             `json:"spare_plans,omitempty"`
	ActivePMs   []float64                `json:"active_pms,omitempty"`
	MeanUtil    []float64                `json:"mean_util,omitempty"`
	TraceSeq    uint64                   `json:"trace_seq"`

	// DecisionSeq mirrors TraceSeq for the decision log, and PlacerState
	// carries policy-internal state (Recorder keying, the adaptive
	// threshold walk). Both are omitted when zero/nil so checkpoints
	// from uninstrumented runs keep their pre-policy-lab byte layout.
	DecisionSeq uint64              `json:"decision_seq,omitempty"`
	PlacerState *policy.PlacerState `json:"placer_state,omitempty"`

	// Per-cell sections, present only when the run was sharded
	// (Config.Cells > 1). The engine events themselves are stored
	// cell-agnostically (merged, sorted by (At, Seq)) so a snapshot can
	// restore into ANY cell count — the target config's partition
	// re-derives each event's cell from its routing tag. These sections
	// carry only the per-cell diagnostic attribution: when the restoring
	// config's cell count matches Cells, each cell's dispatch counter
	// resumes; otherwise (the re-shard path) per-cell attribution
	// restarts at zero while the global Engine.Dispatched is preserved.
	Cells          int      `json:"cells,omitempty"`
	CellDispatched []uint64 `json:"cell_dispatched,omitempty"`
}

// meta fingerprints the run configuration for snapshot compatibility.
func (s *simulator) meta() snapshot.Meta {
	return snapshot.Meta{
		Scheme:          s.cfg.Placer.Name(),
		FleetSize:       s.dc.Size(),
		ClassDigest:     snapshot.ClassDigest(s.dc),
		Requests:        len(s.cfg.Requests),
		WorkloadDigest:  snapshot.WorkloadDigest(s.cfg.Requests),
		ControlPeriod:   s.cfg.ControlPeriod,
		MeterBin:        s.cfg.MeterBin,
		TimedMigrations: s.cfg.TimedMigrations,
		Spare:           s.cfg.Spare != nil,
		Failures:        s.cfg.Failures.Enabled(),
	}
}

// Save writes a checkpoint of the current state to w. It must be called
// at an event boundary — between two Steps, never from inside a callback.
func (m *Sim) Save(w io.Writer) error { return m.s.save(w) }

func (s *simulator) save(w io.Writer) error {
	st, err := s.captureState()
	if err != nil {
		return err
	}
	return snapshot.Write(w, s.meta(), st)
}

func (s *simulator) captureState() (*simState, error) {
	engSt, err := s.eng.SnapshotState()
	if err != nil {
		return nil, fmt.Errorf("sim: snapshot: %w", err)
	}
	st := &simState{
		Engine:      engSt,
		Meter:       s.meter.State(),
		Arrived:     s.arrived,
		TickRan:     s.tickRan,
		SpareTarget: s.spareTarget,
		Boots:       s.boots,
		QueuedCount: s.queuedCount,
		Waits:       s.waits,
		Completed:   s.res.Summary.VMsCompleted,
		Rejected:    s.res.Summary.Rejected,
		Failures:    s.res.Failures,
		SparePlans:  s.res.SparePlans,
		ActivePMs:   s.res.ActivePMs.Values,
		MeanUtil:    s.res.MeanUtilization.Values,
	}
	for _, pm := range s.dc.PMs() {
		st.PMs = append(st.PMs, pmState{
			ID:          pm.ID,
			State:       int(pm.State),
			Reliability: pm.Reliability,
			Failures:    pm.Failures,
			Used:        pm.Used.Clone(),
			Reserved:    pm.Reserved(),
		})
	}
	var vms []*cluster.VM
	vms = append(vms, s.dc.RunningVMs()...)
	vms = append(vms, s.queue...)
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
	for _, vm := range vms {
		st.VMs = append(st.VMs, vmState{
			ID:         vm.ID,
			Demand:     vm.Demand.Clone(),
			Est:        vm.EstimatedRuntime,
			Actual:     vm.ActualRuntime,
			Submit:     vm.SubmitTime,
			Start:      vm.StartTime,
			Finish:     vm.FinishTime,
			State:      int(vm.State),
			Host:       vm.Host,
			Migrations: vm.Migrations,
		})
	}
	for _, vm := range s.queue {
		st.Queue = append(st.Queue, vm.ID)
	}
	if len(s.bootReadyAt) > 0 {
		st.BootReadyAt = s.bootReadyAt
	}
	for id, hold := range s.holds {
		st.Holds = append(st.Holds, holdState{VM: id, Source: hold.source.ID, Demand: hold.demand.Clone()})
	}
	sort.Slice(st.Holds, func(i, j int) bool { return st.Holds[i].VM < st.Holds[j].VM })
	for _, mv := range s.res.Moves {
		st.Moves = append(st.Moves, moveState{
			VM: mv.VM, From: mv.From, To: mv.To,
			Gain:  strconv.FormatFloat(mv.Gain, 'g', -1, 64),
			Round: mv.Round,
		})
	}
	if s.ctrl != nil {
		cs := s.ctrl.State()
		st.Spare = &cs
	}
	if s.inj != nil {
		rs := s.inj.RNGState()
		st.FailRNG = &rs
	}
	if r, ok := policy.RandomOf(s.cfg.Placer); ok {
		rs := r.RNGState()
		st.PlacerRNG = &rs
	}
	if s.cfg.Obs.Tracing() {
		st.TraceSeq = s.cfg.Obs.Trace.Events()
	} else {
		st.TraceSeq = s.traceSeq0
	}
	if s.cfg.Obs.DecisionTracing() {
		st.DecisionSeq = s.cfg.Obs.Decisions.Events()
	} else {
		st.DecisionSeq = s.decisionSeq0
	}
	st.PlacerState = policy.CaptureState(s.cfg.Placer)
	if sh, ok := s.eng.(*shardedEngine); ok {
		st.Cells = sh.part.Cells
		st.CellDispatched = sh.cellDispatched()
	}
	return st, nil
}

// Restore rebuilds a mid-run Sim from a checkpoint written by Save. cfg
// must describe the same run (scheme, fleet, workload, control knobs);
// the envelope's fingerprint enforces this. The fresh components cfg
// carries — datacenter, observer, event log — receive the checkpointed
// state; a tracing observer's logical clock resumes where the interrupted
// run's stopped, so the concatenated traces match the uninterrupted run
// canonically byte-for-byte.
func Restore(cfg Config, r io.Reader) (*Sim, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	f, err := snapshot.Read(r)
	if err != nil {
		return nil, err
	}
	s := &simulator{cfg: &cfg, dc: cfg.DC}
	s.eng = newScheduler(cfg.Cells, cfg.DC.Size(), cfg.Obs)
	s.pctx = core.NewContext(s.dc)
	if err := f.CheckMeta(s.meta()); err != nil {
		return nil, err
	}
	var st simState
	if err := json.Unmarshal(f.State, &st); err != nil {
		return nil, fmt.Errorf("sim: decode snapshot state: %w", err)
	}
	if err := s.restore(&st); err != nil {
		return nil, err
	}
	return &Sim{s: s}, nil
}

func (s *simulator) restore(st *simState) error {
	s.initRun()
	if err := s.meter.RestoreState(st.Meter); err != nil {
		return fmt.Errorf("sim: restore meter: %w", err)
	}
	if s.ctrl != nil {
		if st.Spare == nil {
			return fmt.Errorf("sim: config has a spare controller but snapshot carries no spare state")
		}
		if err := s.ctrl.RestoreState(*st.Spare); err != nil {
			return fmt.Errorf("sim: restore spare controller: %w", err)
		}
	}
	if s.inj != nil {
		if st.FailRNG == nil {
			return fmt.Errorf("sim: config injects failures but snapshot carries no failure RNG state")
		}
		if err := s.inj.RestoreRNG(*st.FailRNG); err != nil {
			return fmt.Errorf("sim: restore failure RNG: %w", err)
		}
	}
	if rp, ok := policy.RandomOf(s.cfg.Placer); ok {
		if st.PlacerRNG == nil {
			return fmt.Errorf("sim: random placer but snapshot carries no placer RNG state")
		}
		if err := rp.RestoreRNG(*st.PlacerRNG); err != nil {
			return fmt.Errorf("sim: restore placer RNG: %w", err)
		}
	}
	if err := policy.RestoreState(s.cfg.Placer, st.PlacerState); err != nil {
		return fmt.Errorf("sim: restore placer state: %w", err)
	}
	s.setupObs()
	s.traceSeq0 = st.TraceSeq
	if s.cfg.Obs.Tracing() {
		if err := s.cfg.Obs.Trace.ResumeSeq(st.TraceSeq); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	s.decisionSeq0 = st.DecisionSeq
	if s.cfg.Obs.DecisionTracing() {
		if err := s.cfg.Obs.Decisions.ResumeSeq(st.DecisionSeq); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}

	// Machine state first: hosting requires the PM power states.
	if len(st.PMs) != s.dc.Size() {
		return fmt.Errorf("sim: snapshot has %d PMs, fleet has %d", len(st.PMs), s.dc.Size())
	}
	for i, ps := range st.PMs {
		pm := s.dc.PM(ps.ID)
		if pm == nil || int(pm.ID) != i {
			return fmt.Errorf("sim: snapshot PM record %d has ID %d", i, ps.ID)
		}
		pm.State = cluster.PMState(ps.State)
		pm.Reliability = ps.Reliability
		pm.Failures = ps.Failures
	}
	for id, ready := range st.BootReadyAt {
		s.bootReadyAt[id] = ready
	}

	// Re-host VMs in ID order, then re-apply migration holds; Used and
	// Reserved are thereby recomputed through the same arithmetic path
	// the live run took (demands sum exactly — see the bit-equality
	// verification below, which catches any drift).
	vmByID := make(map[cluster.VMID]*cluster.VM, len(st.VMs))
	for _, vs := range st.VMs {
		vm := cluster.NewVM(vs.ID, vs.Demand, vs.Est, vs.Actual, vs.Submit)
		vm.StartTime = vs.Start
		vm.FinishTime = vs.Finish
		vm.Migrations = vs.Migrations
		if vs.Host != cluster.NoPM {
			pm := s.dc.PM(vs.Host)
			if pm == nil {
				return fmt.Errorf("sim: snapshot VM %d hosted on unknown PM %d", vs.ID, vs.Host)
			}
			if err := pm.Host(vm); err != nil {
				return fmt.Errorf("sim: snapshot re-host: %w", err)
			}
		}
		vm.State = cluster.VMState(vs.State)
		vmByID[vm.ID] = vm
	}
	for _, hs := range st.Holds {
		vm := vmByID[hs.VM]
		source := s.dc.PM(hs.Source)
		if vm == nil || source == nil {
			return fmt.Errorf("sim: snapshot hold references unknown VM %d or PM %d", hs.VM, hs.Source)
		}
		if err := source.Reserve(hs.Demand); err != nil {
			return fmt.Errorf("sim: snapshot hold: %w", err)
		}
		s.holds[vm.ID] = &migrationHold{vm: vm, source: source, demand: hs.Demand.Clone()}
	}
	for _, ps := range st.PMs {
		pm := s.dc.PM(ps.ID)
		if !vectorEq(pm.Used, ps.Used) || !vectorEq(pm.Reserved(), ps.Reserved) {
			return fmt.Errorf("sim: PM %d accounting drift after restore: used %v/%v reserved %v/%v",
				ps.ID, pm.Used, ps.Used, pm.Reserved(), ps.Reserved)
		}
	}
	for _, id := range st.Queue {
		vm := vmByID[id]
		if vm == nil {
			return fmt.Errorf("sim: snapshot queue references unknown VM %d", id)
		}
		s.queue = append(s.queue, vm)
	}

	// Counters, series, and result accumulators.
	s.arrived = st.Arrived
	s.tickRan = st.TickRan
	s.spareTarget = st.SpareTarget
	s.boots = st.Boots
	s.queuedCount = st.QueuedCount
	s.waits = append(s.waits, st.Waits...)
	for _, w := range s.waits {
		s.waitHist.Observe(w)
	}
	s.res.Summary.VMsCompleted = st.Completed
	s.res.Summary.Rejected = st.Rejected
	s.res.Failures = st.Failures
	s.res.SparePlans = append(s.res.SparePlans, st.SparePlans...)
	s.res.ActivePMs.Values = append(s.res.ActivePMs.Values, st.ActivePMs...)
	s.res.MeanUtilization.Values = append(s.res.MeanUtilization.Values, st.MeanUtil...)
	for _, ms := range st.Moves {
		gain, err := strconv.ParseFloat(ms.Gain, 64)
		if err != nil {
			return fmt.Errorf("sim: snapshot move gain %q: %w", ms.Gain, err)
		}
		s.res.Moves = append(s.res.Moves, core.Move{VM: ms.VM, From: ms.From, To: ms.To, Gain: gain, Round: ms.Round})
	}

	// Finally the event queue: rebuild each tagged event's callback over
	// the restored objects, then re-arm the cancellation maps from the
	// returned handles. A sharded engine re-derives every event's cell
	// from its routing tag under the CURRENT config's partition, so a
	// snapshot written at one cell count restores into any other (the
	// re-shard path); per-cell dispatch attribution carries over only
	// when the counts match.
	if sh, ok := s.eng.(*shardedEngine); ok {
		sh.setRestoreDispatched(st.Cells, st.CellDispatched)
	}
	handles, err := s.eng.RestoreState(st.Engine, func(ev QueuedEvent) func() {
		switch ev.Tag.Kind {
		case evArrival:
			id := cluster.VMID(ev.Tag.Arg)
			req, ok := s.reqOf[id]
			if !ok {
				return nil
			}
			return func() { s.onArrival(id, req) }
		case evControlTick:
			return s.onControlTick
		case evCreationDone:
			vm := vmByID[cluster.VMID(ev.Tag.Arg)]
			if vm == nil {
				return nil
			}
			return func() { s.onCreationDone(vm) }
		case evDeparture:
			vm := vmByID[cluster.VMID(ev.Tag.Arg)]
			if vm == nil {
				return nil
			}
			return func() { s.onDeparture(vm) }
		case evBootDone, evShutdownDone, evFailure, evRepaired:
			pm := s.dc.PM(cluster.PMID(ev.Tag.Arg))
			if pm == nil {
				return nil
			}
			switch ev.Tag.Kind {
			case evBootDone:
				return func() { s.onBootDone(pm) }
			case evShutdownDone:
				return func() { s.onShutdownDone(pm) }
			case evFailure:
				return func() { s.onFailure(pm) }
			default:
				return func() { s.onRepaired(pm) }
			}
		case evMigCutover:
			hold := s.holds[cluster.VMID(ev.Tag.Arg)]
			if hold == nil {
				return nil
			}
			return func() { s.finishTimedMigration(hold.vm, hold) }
		default:
			return nil
		}
	})
	if err != nil {
		return fmt.Errorf("sim: restore event queue: %w", err)
	}
	for i, ev := range st.Engine.Events {
		switch ev.Tag.Kind {
		case evCreationDone, evDeparture:
			s.lifeEvent[cluster.VMID(ev.Tag.Arg)] = handles[i]
		case evFailure:
			s.failEvent[cluster.PMID(ev.Tag.Arg)] = handles[i]
		case evMigCutover:
			s.holds[cluster.VMID(ev.Tag.Arg)].done = handles[i]
		}
	}
	if err := s.dc.CheckInvariants(); err != nil {
		return fmt.Errorf("sim: restored state inconsistent: %w", err)
	}
	s.setupAudit()
	return nil
}

// vectorEq is exact (bitwise) float equality — the restore drift check
// demands bit-exactness, not tolerance.
func vectorEq(a, b vector.V) bool {
	if len(a) != len(b) {
		// A nil Reserved marshals as omitted; treat nil and zero as equal.
		return a.IsZero() && b.IsZero()
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// snapshotRoundTrip is the auditor's snapshot check: serialize the live
// state, restore it into a topology clone of the fleet, serialize the
// clone, and require the two byte streams to be identical — plus a full
// invariant pass over the restored clone. Any state the snapshot drops or
// distorts surfaces here, at the period it first happens, instead of as a
// diverging resume long after.
func (s *simulator) snapshotRoundTrip() error {
	var buf bytes.Buffer
	if err := s.save(&buf); err != nil {
		return err
	}
	first := append([]byte(nil), buf.Bytes()...)
	cfg2 := *s.cfg
	cfg2.DC = s.dc.CloneTopology()
	cfg2.Obs = nil
	cfg2.EventLog = nil
	cfg2.Audit = audit.Off
	cfg2.CheckInvariants = false
	m2, err := Restore(cfg2, bytes.NewReader(first))
	if err != nil {
		return fmt.Errorf("restore of own snapshot failed: %w", err)
	}
	if err := m2.s.dc.CheckInvariants(); err != nil {
		return fmt.Errorf("restored state fails invariants: %w", err)
	}
	var buf2 bytes.Buffer
	if err := m2.Save(&buf2); err != nil {
		return fmt.Errorf("re-save of restored snapshot failed: %w", err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		return fmt.Errorf("snapshot round-trip not byte-identical (first divergence at byte %d of %d/%d)",
			firstDiff(first, buf2.Bytes()), len(first), buf2.Len())
	}
	return nil
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// SnapshotCheck wraps the round-trip as an auditor check. Serializing the
// whole run state is too heavy for per-event granularity; it runs at
// control-period boundaries.
func (s *simulator) snapshotCheck() audit.Check {
	return audit.Check{
		Name:     "snapshot",
		PerEvent: false,
		Fn:       func(now float64) error { return s.snapshotRoundTrip() },
	}
}
