package sim

import (
	"testing"

	"repro/internal/sim/schedheap"
)

// schedPair drives the calendar-queue engine and the frozen binary-heap
// reference (internal/sim/schedheap) through identical byte-encoded
// operation sequences — schedules, cancels, steps, bounded advances,
// nested schedules from inside callbacks — and requires the dispatch
// sequences to be bit-identical. This is the executable form of the
// wheel's correctness argument: the (time, seq) total order the heap
// defines is exactly what the year-window search dispatches.
type schedPair struct {
	t     *testing.T
	wheel Engine
	heap  schedheap.Engine

	wlog, hlog []int
	wlive      []Event
	hlive      []*schedheap.Event
	nextTag    int
	ops        int
}

// childBase offsets the tags of events spawned from inside callbacks so
// they never collide with top-level tags (and never spawn grandchildren).
const childBase = 1 << 20

func (p *schedPair) schedule(at float64) {
	tag := p.nextTag
	p.nextTag++
	p.wlive = append(p.wlive, p.wheel.Schedule(at, func() {
		p.wlog = append(p.wlog, tag)
		if tag%5 == 0 {
			ct := childBase + tag
			p.wheel.ScheduleAfter(1.5, func() { p.wlog = append(p.wlog, ct) })
		}
	}))
	p.hlive = append(p.hlive, p.heap.Schedule(at, func() {
		p.hlog = append(p.hlog, tag)
		if tag%5 == 0 {
			ct := childBase + tag
			p.heap.ScheduleAfter(1.5, func() { p.hlog = append(p.hlog, ct) })
		}
	}))
}

// step consumes two bytes (opcode, argument) and applies one operation to
// both engines.
func (p *schedPair) step(op, arg byte) {
	switch op % 5 {
	case 0, 1: // schedule: fractional offsets with frequent ties, occasional far jumps
		d := float64(arg%32) * 0.5
		if arg%7 == 0 {
			d += float64(arg) * 64
		}
		p.schedule(p.wheel.Now() + d)
	case 2: // cancel the k-th issued handle (may already be fired or cancelled)
		if n := len(p.wlive); n > 0 {
			k := int(arg) % n
			p.wlive[k].Cancel()
			p.hlive[k].Cancel()
		}
	case 3: // single step
		if sw, sh := p.wheel.Step(), p.heap.Step(); sw != sh {
			p.t.Fatalf("Step: wheel=%v heap=%v", sw, sh)
		}
	case 4: // bounded advance
		to := p.wheel.Now() + float64(arg)
		p.wheel.RunUntil(to)
		p.heap.RunUntil(to)
	}
	p.check()
}

func (p *schedPair) check() {
	p.ops++
	if p.wheel.Now() != p.heap.Now() {
		p.t.Fatalf("Now: wheel=%g heap=%g", p.wheel.Now(), p.heap.Now())
	}
	if p.wheel.Pending() != p.heap.Pending() {
		p.t.Fatalf("Pending: wheel=%d heap=%d", p.wheel.Pending(), p.heap.Pending())
	}
	if p.wheel.Dispatched() != p.heap.Dispatched() {
		p.t.Fatalf("Dispatched: wheel=%d heap=%d", p.wheel.Dispatched(), p.heap.Dispatched())
	}
	if p.ops%16 == 0 {
		if err := p.wheel.VerifyQueue(); err != nil {
			p.t.Fatalf("VerifyQueue: %v", err)
		}
	}
}

func (p *schedPair) finish() {
	p.wheel.Run()
	p.heap.Run()
	if err := p.wheel.VerifyQueue(); err != nil {
		p.t.Fatalf("VerifyQueue after drain: %v", err)
	}
	if len(p.wlog) != len(p.hlog) {
		p.t.Fatalf("dispatch counts diverge: wheel=%d heap=%d", len(p.wlog), len(p.hlog))
	}
	for i := range p.wlog {
		if p.wlog[i] != p.hlog[i] {
			p.t.Fatalf("dispatch order diverges at %d: wheel fired %d, heap fired %d",
				i, p.wlog[i], p.hlog[i])
		}
	}
}

func runSchedBytes(t *testing.T, data []byte) {
	p := &schedPair{t: t}
	for i := 0; i+1 < len(data); i += 2 {
		p.step(data[i], data[i+1])
	}
	p.finish()
}

// FuzzScheduler is the byte-driven differential harness: any operation
// sequence the fuzzer invents must dispatch bit-identically from the
// timing wheel and the reference heap.
func FuzzScheduler(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 10, 0, 10, 3, 0, 4, 50})                         // ties, step, advance
	f.Add([]byte{0, 0, 1, 7, 2, 0, 2, 1, 4, 255})                    // cancels incl. repeats
	f.Add([]byte{0, 7, 0, 14, 0, 21, 0, 28, 3, 0, 3, 0, 3, 0, 3, 0}) // far jumps then drain
	f.Add([]byte{1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5,
		1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5, 1, 5}) // force a resize-up
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			t.Skip("cap the per-input work")
		}
		runSchedBytes(t, data)
	})
}

// TestRandomOperationsScheduler replays a fixed pseudo-random operation
// stream through the differential harness so the property is exercised on
// every plain `go test` run, fuzzing or not. Large enough to cross
// several resize-up and resize-down boundaries.
func TestRandomOperationsScheduler(t *testing.T) {
	state := uint64(0x9E3779B97F4A7C15)
	next := func() byte {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return byte(state >> 56)
	}
	data := make([]byte, 2*6000)
	for i := range data {
		data[i] = next()
	}
	runSchedBytes(t, data)
}
