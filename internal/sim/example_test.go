package sim_test

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Example runs the paper's dynamic scheme over a tiny deterministic
// workload and reads the headline metrics off the result.
func Example() {
	fast := cluster.FastClass
	dc := cluster.MustNew(cluster.Config{
		RMin:   cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{{Class: &fast, Count: 4}},
	})

	var requests []workload.Request
	for i := 0; i < 12; i++ {
		requests = append(requests, workload.Request{
			JobID: i, Submit: float64(i) * 300,
			CPUCores: 1, MemoryGB: 0.5,
			EstimatedRunTime: 7200, RunTime: 7200,
		})
	}

	res, err := sim.Run(sim.Config{
		DC:       dc,
		Placer:   policy.NewDynamic(),
		Requests: requests,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed: %d\n", res.Summary.VMsCompleted)
	fmt.Printf("peak active PMs: %.0f\n", res.Summary.PeakActivePMs)
	fmt.Printf("energy > 0: %v\n", res.Summary.TotalEnergyKWh > 0)
	// Output:
	// completed: 12
	// peak active PMs: 2
	// energy > 0: true
}
