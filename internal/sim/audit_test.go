package sim

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/failure"
	"repro/internal/policy"
	"repro/internal/spare"
)

// TestRunAuditEventFullTrace runs the kitchen-sink configuration —
// dynamic scheme, spare controller, failures, timed migrations — with
// event-granularity auditing: every event is followed by the cheap
// invariant walk, every control period by the full oracle differential,
// and every consolidation Apply by a matrix self-audit. Zero violations
// over the whole trace is the acceptance bar.
func TestRunAuditEventFullTrace(t *testing.T) {
	sc := spare.DefaultConfig()
	res, err := Run(Config{
		DC:       smallFleet(),
		Placer:   policy.NewDynamic(),
		Requests: mixedLoad(),
		Spare:    &sc,
		Failures: failure.Config{
			MTBF: 5e4, RepairTime: 4000, Seed: 3,
			ReliabilityDecay: 0.9, MinReliability: 0.5,
		},
		TimedMigrations: true,
		Audit:           audit.Event,
	})
	if err != nil {
		t.Fatalf("audited run failed: %v", err)
	}
	if res.AuditChecks == 0 {
		t.Fatal("event-mode run reported zero audit checks")
	}
	if res.Summary.VMsCompleted == 0 {
		t.Fatal("degenerate run: nothing completed")
	}
}

// TestRunAuditPeriodMatchesUnaudited verifies observability: period-mode
// auditing must not change the simulation itself, only observe it.
func TestRunAuditPeriodMatchesUnaudited(t *testing.T) {
	run := func(mode audit.Mode) *Result {
		res, err := Run(Config{
			DC:       smallFleet(),
			Placer:   policy.NewDynamic(),
			Requests: mixedLoad(),
			Audit:    mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(audit.Off)
	audited := run(audit.Period)
	if plain.Summary.TotalEnergyKWh != audited.Summary.TotalEnergyKWh {
		t.Errorf("period auditing changed energy: %g vs %g",
			plain.Summary.TotalEnergyKWh, audited.Summary.TotalEnergyKWh)
	}
	if len(plain.Moves) != len(audited.Moves) {
		t.Errorf("period auditing changed move count: %d vs %d", len(plain.Moves), len(audited.Moves))
	}
	if plain.AuditChecks != 0 {
		t.Errorf("Off mode ran %d checks", plain.AuditChecks)
	}
	if audited.AuditChecks == 0 {
		t.Error("Period mode ran no checks")
	}
}

// TestRunAuditStaticSchemes exercises the auditor without the dynamic
// scheme: the tracker differential is absent (there is no probability
// matrix to check) but the state, energy, and conservation checks must
// still hold over a static baseline's run.
func TestRunAuditStaticSchemes(t *testing.T) {
	for _, placer := range []policy.Placer{policy.FirstFit{}, policy.BestFit{}} {
		res, err := Run(Config{
			DC:       smallFleet(),
			Placer:   placer,
			Requests: mixedLoad(),
			Audit:    audit.Event,
		})
		if err != nil {
			t.Fatalf("%s: audited run failed: %v", placer.Name(), err)
		}
		if res.AuditChecks == 0 {
			t.Fatalf("%s: no checks ran", placer.Name())
		}
	}
}
