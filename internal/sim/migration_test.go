package sim

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/failure"
	"repro/internal/policy"
	"repro/internal/workload"
)

// fragmentingTrace staggers short and long jobs so consolidation triggers.
func fragmentingTrace(n int) []workload.Request {
	var rs []workload.Request
	for i := 0; i < n; i++ {
		run := 1800.0
		if i%2 == 0 {
			run = 15000
		}
		rs = append(rs, workload.Request{
			JobID: i, Submit: float64(i) * 45, CPUCores: 1, MemoryGB: 0.5,
			EstimatedRunTime: run, RunTime: run,
		})
	}
	return rs
}

func TestTimedMigrationsComplete(t *testing.T) {
	res, err := Run(Config{
		DC:              smallFleet(),
		Placer:          policy.NewDynamic(),
		Requests:        fragmentingTrace(60),
		TimedMigrations: true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.VMsCompleted != 60 {
		t.Errorf("completed %d/60", res.Summary.VMsCompleted)
	}
	if len(res.Moves) == 0 {
		t.Error("no migrations under the timed model")
	}
}

func TestTimedMigrationsComparableChurn(t *testing.T) {
	// Under the timed model a VM in flight cannot migrate again for
	// T_mig seconds; the decision trajectory diverges from the instant
	// model's, but both must complete all work with migration counts in
	// the same ballpark.
	trace := fragmentingTrace(80)
	instant, err := Run(Config{DC: smallFleet(), Placer: policy.NewDynamic(), Requests: trace})
	if err != nil {
		t.Fatal(err)
	}
	timed, err := Run(Config{DC: smallFleet(), Placer: policy.NewDynamic(), Requests: trace, TimedMigrations: true})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := instant.Summary.Migrations, timed.Summary.Migrations
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == 0 || hi > 2*lo+10 {
		t.Errorf("migration counts diverge wildly: instant %d vs timed %d",
			instant.Summary.Migrations, timed.Summary.Migrations)
	}
	if timed.Summary.VMsCompleted != instant.Summary.VMsCompleted {
		t.Errorf("completions differ: %d vs %d",
			timed.Summary.VMsCompleted, instant.Summary.VMsCompleted)
	}
}

func TestTimedMigrationsHoldSourceResources(t *testing.T) {
	// Run step-by-step: immediately after a consolidation that migrates,
	// the source PM must carry a reservation. We detect this through the
	// invariant checker (which validates reservation accounting) plus a
	// post-run scan that all holds were released.
	dc := smallFleet()
	res, err := Run(Config{
		DC:              dc,
		Placer:          policy.NewDynamic(),
		Requests:        fragmentingTrace(60),
		TimedMigrations: true,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) == 0 {
		t.Fatal("no migrations to exercise holds")
	}
	for _, pm := range dc.PMs() {
		if !pm.Reserved().IsZero() {
			t.Errorf("PM %d still holds reservations after drain: %v", pm.ID, pm.Reserved())
		}
	}
}

func TestTimedMigrationsWithFailures(t *testing.T) {
	dc := smallFleet()
	res, err := Run(Config{
		DC:              dc,
		Placer:          policy.NewDynamic(),
		Requests:        fragmentingTrace(60),
		TimedMigrations: true,
		Failures: failure.Config{
			MTBF: 15000, RepairTime: 200,
			ReliabilityDecay: 0.9, MinReliability: 0.2, Seed: 9,
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.VMsCompleted != 60 {
		t.Errorf("completed %d/60 with failures + timed migrations", res.Summary.VMsCompleted)
	}
	for _, pm := range dc.PMs() {
		if !pm.Reserved().IsZero() {
			t.Errorf("PM %d leaked reservations: %v", pm.ID, pm.Reserved())
		}
	}
}

func TestMigratingVMsNotReMigrated(t *testing.T) {
	// Every VM's migration count under the timed model is bounded by
	// runtime / T_mig (it spends T_mig locked per move); indirectly
	// verified by checking no VM exceeds a generous per-VM move budget.
	res, err := Run(Config{
		DC:              smallFleet(),
		Placer:          policy.NewDynamic(),
		Requests:        fragmentingTrace(60),
		TimedMigrations: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	perVM := map[cluster.VMID]int{}
	for _, mv := range res.Moves {
		perVM[mv.VM]++
	}
	for id, n := range perVM {
		if n > 100 {
			t.Errorf("VM %d migrated %d times", id, n)
		}
	}
}
