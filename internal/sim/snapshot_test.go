package sim

import (
	"bytes"
	"testing"

	"repro/internal/audit"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/snapshot"
	"repro/internal/spare"
	"repro/internal/workload"
)

// snapCfg is the full-featured configuration the checkpoint tests run
// under: spare controller, failure injection, timed migrations, warm
// start — every subsystem whose state a snapshot must carry.
func snapCfg(reqs []workload.Request, placer policy.Placer, trace *bytes.Buffer) Config {
	sc := spare.DefaultConfig()
	cfg := Config{
		DC:       smallFleet(),
		Placer:   placer,
		Requests: reqs,
		Spare:    &sc,
		Failures: failure.Config{
			MTBF: 4e4, RepairTime: 5000, Seed: 11,
			ReliabilityDecay: 0.9, MinReliability: 0.5,
		},
		TimedMigrations: true,
		WarmStart:       2,
	}
	if trace != nil {
		cfg.Obs = obs.NewTracing(trace)
	}
	return cfg
}

func runToEnd(t *testing.T, m *Sim) *Result {
	t.Helper()
	for {
		ok, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	res, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func canon(t *testing.T, b []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := obs.Canonicalize(bytes.NewReader(b), &out); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func diffContext(a, b []byte) (int, string, string) {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	at := 0
	for at < n && a[at] == b[at] {
		at++
	}
	lo := at - 160
	if lo < 0 {
		lo = 0
	}
	cut := func(s []byte) string {
		hi := at + 160
		if hi > len(s) {
			hi = len(s)
		}
		if lo > len(s) {
			return ""
		}
		return string(s[lo:hi])
	}
	return at, cut(a), cut(b)
}

func assertSameOutcome(t *testing.T, resA, resB *Result) {
	t.Helper()
	if resA.Summary != resB.Summary {
		t.Fatalf("summaries differ:\nfull:    %+v\nresumed: %+v", resA.Summary, resB.Summary)
	}
	if len(resA.Moves) != len(resB.Moves) {
		t.Fatalf("move counts differ: %d vs %d", len(resA.Moves), len(resB.Moves))
	}
	for i := range resA.Moves {
		if resA.Moves[i] != resB.Moves[i] {
			t.Fatalf("move %d differs: %+v vs %+v", i, resA.Moves[i], resB.Moves[i])
		}
	}
	if len(resA.SparePlans) != len(resB.SparePlans) {
		t.Fatalf("spare plan counts differ: %d vs %d", len(resA.SparePlans), len(resB.SparePlans))
	}
	for i := range resA.SparePlans {
		if resA.SparePlans[i] != resB.SparePlans[i] {
			t.Fatalf("spare plan %d differs: %+v vs %+v", i, resA.SparePlans[i], resB.SparePlans[i])
		}
	}
	for _, pair := range []struct {
		name string
		a, b []float64
	}{
		{"active PMs", resA.ActivePMs.Values, resB.ActivePMs.Values},
		{"mean utilization", resA.MeanUtilization.Values, resB.MeanUtilization.Values},
		{"energy", resA.EnergyKWh.Values, resB.EnergyKWh.Values},
	} {
		if len(pair.a) != len(pair.b) {
			t.Fatalf("%s series lengths differ: %d vs %d", pair.name, len(pair.a), len(pair.b))
		}
		for i := range pair.a {
			if pair.a[i] != pair.b[i] {
				t.Fatalf("%s series differs at %d: %v vs %v", pair.name, i, pair.a[i], pair.b[i])
			}
		}
	}
	if resA.Failures != resB.Failures {
		t.Fatalf("failure counts differ: %d vs %d", resA.Failures, resB.Failures)
	}
}

// TestSnapshotResumeBitExact is the tentpole acceptance test: a run
// checkpointed at an arbitrary event boundary and resumed in a "fresh
// process" (fresh datacenter, fresh observer, fresh engine) must produce
// the uninterrupted run's canonical trace byte-for-byte — the prefix
// written before the checkpoint concatenated with the resumed tail — and
// an identical Result.
func TestSnapshotResumeBitExact(t *testing.T) {
	load := mixedLoad()
	placer := func() policy.Placer { return policy.NewDynamic() }

	var fullTrace bytes.Buffer
	probe, err := New(snapCfg(load, placer(), &fullTrace))
	if err != nil {
		t.Fatal(err)
	}
	resA := runToEnd(t, probe)
	total := probe.Dispatched()
	fullCanon := canon(t, fullTrace.Bytes())

	for _, stopAfter := range []uint64{1, total / 4, total / 2, total - 1} {
		var prefix bytes.Buffer
		m, err := New(snapCfg(load, placer(), &prefix))
		if err != nil {
			t.Fatal(err)
		}
		for m.Dispatched() < stopAfter {
			ok, err := m.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("run drained before %d events; shrink the stop points", stopAfter)
			}
		}
		var ckpt bytes.Buffer
		if err := m.Save(&ckpt); err != nil {
			t.Fatalf("save at %d: %v", stopAfter, err)
		}

		var tail bytes.Buffer
		m2, err := Restore(snapCfg(load, placer(), &tail), bytes.NewReader(ckpt.Bytes()))
		if err != nil {
			t.Fatalf("restore at %d: %v", stopAfter, err)
		}
		if m2.Dispatched() != stopAfter {
			t.Fatalf("restored run at %d dispatched, want %d", m2.Dispatched(), stopAfter)
		}
		resB := runToEnd(t, m2)

		combined := append(canon(t, prefix.Bytes()), canon(t, tail.Bytes())...)
		if !bytes.Equal(combined, fullCanon) {
			at, a, b := diffContext(fullCanon, combined)
			t.Fatalf("checkpoint at event %d: resumed trace diverges at byte %d:\nfull:    ...%s\nresumed: ...%s",
				stopAfter, at, a, b)
		}
		assertSameOutcome(t, resA, resB)
	}
}

// TestSnapshotResumeRandomPlacer covers the placer-RNG stream: the random
// scheme draws from its own stream on every placement, so a resume that
// failed to carry the stream state would diverge immediately.
func TestSnapshotResumeRandomPlacer(t *testing.T) {
	load := mixedLoad()

	var fullTrace bytes.Buffer
	resA, err := Run(snapCfg(load, policy.NewRandom(7), &fullTrace))
	if err != nil {
		t.Fatal(err)
	}

	var prefix bytes.Buffer
	m, err := New(snapCfg(load, policy.NewRandom(7), &prefix))
	if err != nil {
		t.Fatal(err)
	}
	for m.Dispatched() < 150 {
		if ok, err := m.Step(); err != nil || !ok {
			t.Fatalf("step: ok=%v err=%v", ok, err)
		}
	}
	var ckpt bytes.Buffer
	if err := m.Save(&ckpt); err != nil {
		t.Fatal(err)
	}

	// The resumed placer is seeded DIFFERENTLY on purpose: restore must
	// overwrite the fresh stream with the checkpointed one, so the seed
	// the resuming process happens to pass cannot matter.
	var tail bytes.Buffer
	m2, err := Restore(snapCfg(load, policy.NewRandom(99), &tail), bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resB := runToEnd(t, m2)

	combined := append(canon(t, prefix.Bytes()), canon(t, tail.Bytes())...)
	var full bytes.Buffer
	if err := obs.Canonicalize(bytes.NewReader(fullTrace.Bytes()), &full); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(combined, full.Bytes()) {
		at, a, b := diffContext(full.Bytes(), combined)
		t.Fatalf("random-placer resume diverges at byte %d:\nfull:    ...%s\nresumed: ...%s", at, a, b)
	}
	assertSameOutcome(t, resA, resB)
}

// TestSnapshotAuditCheck runs a full audited simulation: the auditor's
// "snapshot" check save→restore→re-saves the entire run state at every
// control period and fails the run on the first byte of divergence.
func TestSnapshotAuditCheck(t *testing.T) {
	cfg := snapCfg(mixedLoad(), policy.NewDynamic(), nil)
	cfg.Audit = audit.Period
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AuditChecks == 0 {
		t.Fatal("audited run reported zero checks")
	}
}

// TestSnapshotMetaMismatch: a checkpoint must refuse to restore under a
// configuration that differs from the one that wrote it.
func TestSnapshotMetaMismatch(t *testing.T) {
	load := mixedLoad()
	m, err := New(snapCfg(load, policy.NewDynamic(), nil))
	if err != nil {
		t.Fatal(err)
	}
	for m.Dispatched() < 100 {
		if ok, err := m.Step(); err != nil || !ok {
			t.Fatalf("step: ok=%v err=%v", ok, err)
		}
	}
	var ckpt bytes.Buffer
	if err := m.Save(&ckpt); err != nil {
		t.Fatal(err)
	}

	// Different scheme.
	if _, err := Restore(snapCfg(load, policy.NewThreshold(), nil), bytes.NewReader(ckpt.Bytes())); err == nil {
		t.Fatal("restore under a different placement scheme succeeded")
	}
	// Different workload.
	if _, err := Restore(snapCfg(load[:len(load)-1], policy.NewDynamic(), nil), bytes.NewReader(ckpt.Bytes())); err == nil {
		t.Fatal("restore under a truncated workload succeeded")
	}
	// Different control knob.
	cfg := snapCfg(load, policy.NewDynamic(), nil)
	cfg.TimedMigrations = false
	if _, err := Restore(cfg, bytes.NewReader(ckpt.Bytes())); err == nil {
		t.Fatal("restore with timed migrations toggled succeeded")
	}
	// The matching configuration still restores.
	if _, err := Restore(snapCfg(load, policy.NewDynamic(), nil), bytes.NewReader(ckpt.Bytes())); err != nil {
		t.Fatalf("restore under the original configuration failed: %v", err)
	}
}

// TestSnapshotVersionMismatch: a checkpoint from a future (or corrupted)
// format version is rejected at the envelope layer.
func TestSnapshotVersionMismatch(t *testing.T) {
	m, err := New(snapCfg(mixedLoad(), policy.NewDynamic(), nil))
	if err != nil {
		t.Fatal(err)
	}
	for m.Dispatched() < 50 {
		if ok, err := m.Step(); err != nil || !ok {
			t.Fatalf("step: ok=%v err=%v", ok, err)
		}
	}
	var ckpt bytes.Buffer
	if err := m.Save(&ckpt); err != nil {
		t.Fatal(err)
	}
	bad := bytes.Replace(ckpt.Bytes(),
		[]byte(`"version":1`), []byte(`"version":99`), 1)
	if bytes.Equal(bad, ckpt.Bytes()) {
		t.Fatal("test did not find the version field to corrupt")
	}
	if _, err := Restore(snapCfg(mixedLoad(), policy.NewDynamic(), nil), bytes.NewReader(bad)); err == nil {
		t.Fatal("restore accepted an unknown format version")
	}
	if _, err := snapshot.Read(bytes.NewReader(bad)); err == nil {
		t.Fatal("snapshot.Read accepted an unknown format version")
	}
}

// TestSnapshotSaveDeterministic: saving the same state twice yields the
// same bytes — the property the golden fixture and the audit round-trip
// both stand on.
func TestSnapshotSaveDeterministic(t *testing.T) {
	m, err := New(snapCfg(mixedLoad(), policy.NewDynamic(), nil))
	if err != nil {
		t.Fatal(err)
	}
	for m.Dispatched() < 200 {
		if ok, err := m.Step(); err != nil || !ok {
			t.Fatalf("step: ok=%v err=%v", ok, err)
		}
	}
	var a, b bytes.Buffer
	if err := m.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := m.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same state differ")
	}
}
