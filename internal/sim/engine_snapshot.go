package sim

import (
	"fmt"
	"sort"
)

// Tag is the serializable identity of a queued event: a small enum of
// event kinds plus one integer argument (a VM or PM identifier, or zero).
// The calendar queue itself holds closures, which cannot be written to a
// checkpoint; the tag is the closure's recipe. On restore, the simulation
// layer maps each (Kind, Arg) back to a fresh closure over the rebuilt
// state, and because dispatch order is total in (at, seq) — independent
// of bucket geometry — re-inserting the tagged events with their original
// sequence numbers reproduces the exact dispatch order of the original
// run.
//
// Kind 0 is reserved for "untagged" (plain Schedule); the event kinds
// themselves are defined by the simulation layer (cloudsim.go), not the
// engine.
type Tag struct {
	Kind uint8 `json:"k"`
	Arg  int64 `json:"a,omitempty"`
}

// QueuedEvent is one serialized calendar-queue entry: the full ordering
// key plus the tag that lets the simulation layer rebuild its callback.
type QueuedEvent struct {
	At  float64 `json:"at"`
	Seq uint64  `json:"seq"`
	Tag Tag     `json:"tag"`
}

// EngineState is the serializable core of the engine. Bucket geometry
// (count, width, cursor, dispatch history) is deliberately absent:
// dispatch order depends only on (at, seq), so a restored engine may
// rebuild any geometry it likes without perturbing the simulation.
type EngineState struct {
	Now        float64       `json:"now"`
	Seq        uint64        `json:"seq"`
	Dispatched uint64        `json:"dispatched"`
	Events     []QueuedEvent `json:"events"`
}

// SnapshotEvents returns every live queued event sorted by (At, Seq). It
// fails if any live event is untagged — an untagged closure cannot be
// rebuilt, so a checkpoint containing one would not be restorable.
func (e *Engine) SnapshotEvents() ([]QueuedEvent, error) {
	evs := make([]QueuedEvent, 0, e.count)
	for i := range e.buckets {
		for rec := e.buckets[i].head; rec != nil; rec = rec.next {
			if rec.tag.Kind == 0 {
				return nil, fmt.Errorf("sim: untagged event at t=%g seq=%d cannot be snapshotted", rec.at, rec.seq)
			}
			evs = append(evs, QueuedEvent{At: rec.at, Seq: rec.seq, Tag: rec.tag})
		}
	}
	if len(evs) != e.count {
		return nil, fmt.Errorf("sim: queue walk found %d events, count says %d", len(evs), e.count)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Seq < evs[j].Seq
	})
	return evs, nil
}

// SnapshotState captures the engine core for a checkpoint.
func (e *Engine) SnapshotState() (EngineState, error) {
	evs, err := e.SnapshotEvents()
	if err != nil {
		return EngineState{}, err
	}
	return EngineState{Now: e.now, Seq: e.seq, Dispatched: e.dispatched, Events: evs}, nil
}

// RestoreState loads a snapshot into a fresh engine. rebuild is called
// once per event, in (At, Seq) order, to produce the callback for that
// event's tag; the returned Event handles are aligned index-for-index
// with st.Events so the caller can re-arm its cancellation maps.
//
// Each event keeps its original sequence number, and the engine's seq
// counter resumes from the snapshot, so the (at, seq) total order — and
// therefore every future dispatch decision — is bit-identical to the
// run that wrote the snapshot.
func (e *Engine) RestoreState(st EngineState, rebuild func(QueuedEvent) func()) ([]Event, error) {
	if e.seq != 0 || e.count != 0 || e.dispatched != 0 {
		return nil, fmt.Errorf("sim: RestoreState on a used engine (seq=%d, pending=%d)", e.seq, e.count)
	}
	seen := make(map[uint64]struct{}, len(st.Events))
	for i, ev := range st.Events {
		if ev.Seq == 0 || ev.Seq > st.Seq {
			return nil, fmt.Errorf("sim: event %d has seq %d outside (0, %d]", i, ev.Seq, st.Seq)
		}
		if _, dup := seen[ev.Seq]; dup {
			return nil, fmt.Errorf("sim: duplicate event seq %d", ev.Seq)
		}
		seen[ev.Seq] = struct{}{}
		if !(ev.At >= st.Now) { // also rejects NaN
			return nil, fmt.Errorf("sim: event %d at t=%g is before snapshot clock %g", i, ev.At, st.Now)
		}
		if ev.Tag.Kind == 0 {
			return nil, fmt.Errorf("sim: event %d has zero tag kind", i)
		}
	}
	e.now = st.Now
	e.seq = st.Seq
	e.dispatched = st.Dispatched
	if e.buckets == nil {
		e.initQueue()
	}
	handles := make([]Event, len(st.Events))
	for i, ev := range st.Events {
		fire := rebuild(ev)
		if fire == nil {
			return nil, fmt.Errorf("sim: rebuild returned nil callback for event %d (kind %d, arg %d)", i, ev.Tag.Kind, ev.Tag.Arg)
		}
		rec := e.alloc()
		rec.at = ev.At
		rec.seq = ev.Seq
		rec.g = e.gFor(ev.At)
		rec.fire = fire
		rec.tag = ev.Tag
		e.insert(rec)
		e.count++
		if e.count > 2*len(e.buckets) && len(e.buckets) < maxBuckets {
			e.resize(2 * len(e.buckets))
		}
		handles[i] = Event{rec: rec, seq: rec.seq, at: ev.At}
	}
	return handles, nil
}
