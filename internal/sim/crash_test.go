package sim

import (
	"bytes"
	"testing"

	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/spare"
	"repro/internal/workload"
)

// crashCfg is the adversarial configuration for crash-injection tests:
// timed migrations with a failure rate high enough that machines die
// while holds are in flight, so checkpoints routinely land inside
// migration windows, repair windows, and post-failure re-queues.
func crashCfg(reqs []workload.Request, trace *bytes.Buffer) Config {
	sc := spare.DefaultConfig()
	cfg := Config{
		DC:       smallFleet(),
		Placer:   policy.NewDynamic(),
		Requests: reqs,
		Spare:    &sc,
		Failures: failure.Config{
			MTBF: 8000, RepairTime: 120,
			ReliabilityDecay: 0.9, MinReliability: 0.2, Seed: 3,
		},
		TimedMigrations: true,
		WarmStart:       2,
	}
	if trace != nil {
		cfg.Obs = obs.NewTracing(trace)
	}
	return cfg
}

// TestCrashResumeEveryBoundary is the exhaustive crash-injection sweep:
// one reference run records a checkpoint at EVERY event boundary, then
// each checkpoint is restored into a fresh world and driven to
// completion. Every resumed run must reproduce the reference run's
// canonical trace byte-for-byte and its exact Result. A checkpoint that
// drops or distorts any state — a hold, a pending repair, an RNG draw, a
// half-booted PM — fails at the boundary where that state first exists.
func TestCrashResumeEveryBoundary(t *testing.T) {
	load := fragmentingTrace(24)

	type point struct {
		at        uint64
		ckpt      []byte
		prefixLen int
	}
	var (
		fullTrace bytes.Buffer
		points    []point
	)
	m, err := New(crashCfg(load, &fullTrace))
	if err != nil {
		t.Fatal(err)
	}
	for {
		var ckpt bytes.Buffer
		if err := m.Save(&ckpt); err != nil {
			t.Fatalf("save at event %d: %v", m.Dispatched(), err)
		}
		points = append(points, point{at: m.Dispatched(), ckpt: ckpt.Bytes(), prefixLen: fullTrace.Len()})
		ok, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	resA, err := m.Finish()
	if err != nil {
		t.Fatal(err)
	}
	fullCanon := canon(t, fullTrace.Bytes())
	t.Logf("sweeping %d checkpoints", len(points))

	// Resuming every boundary of a dense sweep is O(n²) events; stride
	// through all of them in short mode would still be fine here, but
	// keep the full sweep — it is the test's entire point.
	for _, pt := range points {
		var tail bytes.Buffer
		m2, err := Restore(crashCfg(load, &tail), bytes.NewReader(pt.ckpt))
		if err != nil {
			t.Fatalf("restore at event %d: %v", pt.at, err)
		}
		resB := runToEnd(t, m2)

		combined := append(canon(t, fullTrace.Bytes()[:pt.prefixLen]), canon(t, tail.Bytes())...)
		if !bytes.Equal(combined, fullCanon) {
			at, a, b := diffContext(fullCanon, combined)
			t.Fatalf("crash at event %d: resumed trace diverges at byte %d:\nfull:    ...%s\nresumed: ...%s",
				pt.at, at, a, b)
		}
		if resA.Summary != resB.Summary {
			t.Fatalf("crash at event %d: summaries differ:\nfull:    %+v\nresumed: %+v", pt.at, resA.Summary, resB.Summary)
		}
		if len(resA.Moves) != len(resB.Moves) || resA.Failures != resB.Failures {
			t.Fatalf("crash at event %d: moves %d/%d failures %d/%d",
				pt.at, len(resA.Moves), len(resB.Moves), resA.Failures, resB.Failures)
		}
	}
}

// TestFailureHoldUnwindDeterministic pins the fix for the hold-unwind
// ordering bug: when a PM with several in-flight migration holds fails,
// the holds must be released in VM-ID order, not Go map order. Two runs
// of the same seed must stay byte-identical even under a failure rate
// high enough that multi-hold failures happen routinely.
func TestFailureHoldUnwindDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		run := func() []byte {
			var trace bytes.Buffer
			cfg := crashCfg(fragmentingTrace(60), &trace)
			cfg.Failures.Seed = seed
			cfg.Failures.MTBF = 5000
			cfg.CheckInvariants = true
			if _, err := Run(cfg); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return canon(t, trace.Bytes())
		}
		a, b := run(), run()
		if !bytes.Equal(a, b) {
			at, sa, sb := diffContext(a, b)
			t.Fatalf("seed %d: traces diverge at byte %d:\nA: ...%s\nB: ...%s", seed, at, sa, sb)
		}
	}
}

// TestHoldCrashResumeAdversarial drives checkpoint/restore across seeds
// chosen so failures interrupt in-flight migrations (the satellite-3
// bug class): crash at several fractions of each run, resume, and demand
// the exact uninterrupted outcome plus clean terminal state — no leaked
// reservations, no stranded VMs, every request completed exactly once.
func TestHoldCrashResumeAdversarial(t *testing.T) {
	load := fragmentingTrace(60)
	for seed := int64(1); seed <= 8; seed++ {
		mk := func(trace *bytes.Buffer) Config {
			cfg := crashCfg(load, trace)
			cfg.Failures.Seed = seed
			cfg.Failures.MTBF = 5000
			return cfg
		}
		var fullTrace bytes.Buffer
		probe, err := New(mk(&fullTrace))
		if err != nil {
			t.Fatal(err)
		}
		resA := runToEnd(t, probe)
		total := probe.Dispatched()
		fullCanon := canon(t, fullTrace.Bytes())

		for _, frac := range []uint64{4, 2} {
			stop := total / frac
			var prefix bytes.Buffer
			m, err := New(mk(&prefix))
			if err != nil {
				t.Fatal(err)
			}
			for m.Dispatched() < stop {
				if ok, err := m.Step(); err != nil || !ok {
					t.Fatalf("seed %d: step: ok=%v err=%v", seed, ok, err)
				}
			}
			var ckpt bytes.Buffer
			if err := m.Save(&ckpt); err != nil {
				t.Fatalf("seed %d save at %d: %v", seed, stop, err)
			}
			var tail bytes.Buffer
			cfg2 := mk(&tail)
			m2, err := Restore(cfg2, bytes.NewReader(ckpt.Bytes()))
			if err != nil {
				t.Fatalf("seed %d restore at %d: %v", seed, stop, err)
			}
			resB := runToEnd(t, m2)

			combined := append(canon(t, prefix.Bytes()), canon(t, tail.Bytes())...)
			if !bytes.Equal(combined, fullCanon) {
				at, a, b := diffContext(fullCanon, combined)
				t.Fatalf("seed %d crash at %d/%d: trace diverges at byte %d:\nfull:    ...%s\nresumed: ...%s",
					seed, stop, total, at, a, b)
			}
			if resA.Summary != resB.Summary {
				t.Fatalf("seed %d crash at %d: summaries differ:\nfull:    %+v\nresumed: %+v",
					seed, stop, resA.Summary, resB.Summary)
			}
			if resB.Summary.VMsCompleted+resB.Summary.Rejected != len(load) {
				t.Fatalf("seed %d: %d completed + %d rejected != %d requests",
					seed, resB.Summary.VMsCompleted, resB.Summary.Rejected, len(load))
			}
			for _, pm := range cfg2.DC.PMs() {
				if !pm.Reserved().IsZero() {
					t.Fatalf("seed %d: PM %d leaked reservation %v after resumed drain", seed, pm.ID, pm.Reserved())
				}
			}
			for _, vm := range cfg2.DC.RunningVMs() {
				t.Fatalf("seed %d: VM %d still placed (%s) after resumed drain", seed, vm.ID, vm.State)
			}
		}
	}
}
