package sim

import (
	"testing"

	"repro/internal/sim/schedheap"
)

// benchDelay is a cheap xorshift delay stream shared by the engine
// benchmarks so wheel and heap runs see identical schedules.
type benchDelay uint64

func (d *benchDelay) next() float64 {
	x := uint64(*d)
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*d = benchDelay(x)
	return float64(x%1024) * 0.125
}

// BenchmarkEngineSteadyState measures the zero-allocation hot loop: one
// schedule plus one dispatch against a settled 4096-event population.
func BenchmarkEngineSteadyState(b *testing.B) {
	var e Engine
	nop := func() {}
	d := benchDelay(0x243F6A8885A308D3)
	for i := 0; i < 4096; i++ {
		e.Schedule(d.next(), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+d.next(), nop)
		e.Step()
	}
}

// BenchmarkEngineSteadyStateHeap is the same loop on the frozen
// binary-heap reference, for local wheel-vs-heap comparison
// (cmd/benchreport measures the macro scales for BENCH_engine.json).
func BenchmarkEngineSteadyStateHeap(b *testing.B) {
	var e schedheap.Engine
	nop := func() {}
	d := benchDelay(0x243F6A8885A308D3)
	for i := 0; i < 4096; i++ {
		e.Schedule(d.next(), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+d.next(), nop)
		e.Step()
	}
}

// BenchmarkEngineCancel measures schedule-then-cancel churn — the
// disarm-a-timer pattern cloudsim uses for departures and failures.
func BenchmarkEngineCancel(b *testing.B) {
	var e Engine
	nop := func() {}
	d := benchDelay(0x452821E638D01377)
	for i := 0; i < 1024; i++ {
		e.Schedule(d.next(), nop)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.Schedule(e.Now()+100+d.next(), nop)
		ev.Cancel()
	}
}

// BenchmarkEngineBulk schedules 10k events up front and drains them —
// the load-then-run shape of a dvmpsim workload pre-load.
func BenchmarkEngineBulk(b *testing.B) {
	nop := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		d := benchDelay(0x9E3779B97F4A7C15)
		for j := 0; j < 10_000; j++ {
			e.Schedule(d.next()*1000, nop)
		}
		e.Run()
	}
}

func BenchmarkEngineBulkHeap(b *testing.B) {
	nop := func() {}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e schedheap.Engine
		d := benchDelay(0x9E3779B97F4A7C15)
		for j := 0; j < 10_000; j++ {
			e.Schedule(d.next()*1000, nop)
		}
		e.Run()
	}
}
