package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/audit"
	"repro/internal/cluster"
	"repro/internal/failure"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/snapshot"
	"repro/internal/spare"
	"repro/internal/stats"
)

// cellCfg is the adversarial multi-cell configuration: dynamic placer,
// spare controller, timed migrations, and a failure rate high enough
// that cross-cell re-queues and hold unwinds happen routinely.
func cellCfg(cells int, failSeed int64, trace *bytes.Buffer) Config {
	sc := spare.DefaultConfig()
	cfg := Config{
		DC:       smallFleet(),
		Placer:   policy.NewDynamic(),
		Requests: fragmentingTrace(60),
		Spare:    &sc,
		Failures: failure.Config{
			MTBF: 5000, RepairTime: 120,
			ReliabilityDecay: 0.9, MinReliability: 0.2, Seed: failSeed,
		},
		TimedMigrations: true,
		WarmStart:       2,
		Cells:           cells,
	}
	if trace != nil {
		cfg.Obs = obs.NewTracing(trace)
	}
	return cfg
}

// TestShardedDispatchOrderMatchesMonolith is the engine-level
// differential: identical streams of tagged events — including nested
// schedules from inside callbacks and cancellations — fed to the
// monolithic engine and to sharded engines at several cell counts must
// dispatch in the identical order with identical clocks. This is the
// DESIGN.md §14 claim at its barest: sharding changes where an event is
// stored, never when it fires.
func TestShardedDispatchOrderMatchesMonolith(t *testing.T) {
	const fleet = 16
	type fired struct {
		kind uint8
		arg  int64
		at   float64
	}
	drive := func(eng scheduler, seed int64) []fired {
		rng := stats.NewStream(seed)
		var log []fired
		var schedule func(depth int)
		schedule = func(depth int) {
			kind := uint8(rng.Uint64()%9) + 1
			var arg int64
			switch kind {
			case evArrival, evCreationDone, evDeparture, evMigCutover:
				arg = int64(rng.Uint64()%300) + 1 // VM IDs are 1-based
			case evBootDone, evShutdownDone, evFailure, evRepaired:
				arg = int64(rng.Uint64() % fleet)
			}
			at := eng.Now() + float64(rng.Uint64()%5000)/7
			k, a := kind, arg
			eng.ScheduleTag(at, Tag{Kind: kind, Arg: arg}, func() {
				log = append(log, fired{kind: k, arg: a, at: eng.Now()})
				// A third of events spawn follow-ups, like real handlers.
				if depth < 3 && rng.Uint64()%3 == 0 {
					schedule(depth + 1)
					schedule(depth + 1)
				}
			})
		}
		var cancels []Event
		for i := 0; i < 400; i++ {
			schedule(0)
			if i%7 == 0 {
				ev := eng.ScheduleTag(eng.Now()+float64(rng.Uint64()%9000)/3,
					Tag{Kind: evRepaired, Arg: int64(rng.Uint64() % fleet)}, func() {
						t.Error("cancelled event fired")
					})
				cancels = append(cancels, ev)
			}
		}
		for _, ev := range cancels {
			ev.Cancel()
		}
		for eng.Step() {
			if err := eng.VerifyQueue(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		return log
	}

	for seed := int64(1); seed <= 4; seed++ {
		ref := drive(&Engine{}, seed)
		for _, cells := range []int{2, 4, 7, 16} {
			got := drive(newScheduler(cells, fleet, nil), seed)
			if len(got) != len(ref) {
				t.Fatalf("seed %d cells %d: fired %d events, monolith fired %d", seed, cells, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d cells %d: dispatch %d = %+v, monolith %+v", seed, cells, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestCellDifferentialSweep mirrors PR 7's differential sweep for the
// multi-cell engine: 8 failure seeds, each run through the full
// adversarial simulation (spare controller, timed migrations, failures)
// at C=1 and at several cell counts. Every cell count must reproduce
// the monolith's canonical trace byte-for-byte and its exact Result.
func TestCellDifferentialSweep(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		var refTrace bytes.Buffer
		refRes, err := Run(cellCfg(1, seed, &refTrace))
		if err != nil {
			t.Fatalf("seed %d monolith: %v", seed, err)
		}
		refCanon := canon(t, refTrace.Bytes())
		if len(refCanon) == 0 {
			t.Fatalf("seed %d: empty reference trace", seed)
		}
		for _, cells := range []int{2, 3, 6} {
			var trace bytes.Buffer
			res, err := Run(cellCfg(cells, seed, &trace))
			if err != nil {
				t.Fatalf("seed %d cells %d: %v", seed, cells, err)
			}
			got := canon(t, trace.Bytes())
			if !bytes.Equal(got, refCanon) {
				at, a, b := diffContext(refCanon, got)
				t.Fatalf("seed %d cells %d: trace diverges at byte %d:\nmonolith: ...%s\ncells:    ...%s",
					seed, cells, at, a, b)
			}
			if res.Summary != refRes.Summary {
				t.Fatalf("seed %d cells %d: summaries differ:\nmonolith: %+v\ncells:    %+v",
					seed, cells, res.Summary, refRes.Summary)
			}
			if len(res.Moves) != len(refRes.Moves) || res.Failures != refRes.Failures {
				t.Fatalf("seed %d cells %d: moves %d/%d failures %d/%d",
					seed, cells, len(res.Moves), len(refRes.Moves), res.Failures, refRes.Failures)
			}
		}
	}
}

// TestCellCheckpointAcrossCellCounts pins the re-shard path: checkpoint
// a C=6 run at several event boundaries, restore each checkpoint into
// C=6, C=1, and C=3 worlds, and require every combination to complete
// the run with the uninterrupted monolith's canonical trace and Result.
// The snapshot's engine events are cell-agnostic (merged, tagged), so
// the restoring config's partition re-derives each event's cell; this
// test is what makes that a contract instead of an accident.
func TestCellCheckpointAcrossCellCounts(t *testing.T) {
	const seed = 3
	var fullTrace bytes.Buffer
	probe, err := New(cellCfg(1, seed, &fullTrace))
	if err != nil {
		t.Fatal(err)
	}
	resA := runToEnd(t, probe)
	total := probe.Dispatched()
	fullCanon := canon(t, fullTrace.Bytes())

	for _, frac := range []uint64{5, 2} {
		stop := total / frac
		var prefix bytes.Buffer
		m, err := New(cellCfg(6, seed, &prefix))
		if err != nil {
			t.Fatal(err)
		}
		for m.Dispatched() < stop {
			if ok, err := m.Step(); err != nil || !ok {
				t.Fatalf("step: ok=%v err=%v", ok, err)
			}
		}
		var ckpt bytes.Buffer
		if err := m.Save(&ckpt); err != nil {
			t.Fatalf("save at %d: %v", stop, err)
		}
		for _, cells := range []int{6, 1, 3} {
			var tail bytes.Buffer
			m2, err := Restore(cellCfg(cells, seed, &tail), bytes.NewReader(ckpt.Bytes()))
			if err != nil {
				t.Fatalf("restore C=6 snapshot into C=%d at %d: %v", cells, stop, err)
			}
			resB := runToEnd(t, m2)
			combined := append(canon(t, prefix.Bytes()), canon(t, tail.Bytes())...)
			if !bytes.Equal(combined, fullCanon) {
				at, a, b := diffContext(fullCanon, combined)
				t.Fatalf("C=6 -> C=%d at %d/%d: trace diverges at byte %d:\nfull:    ...%s\nresumed: ...%s",
					cells, stop, total, at, a, b)
			}
			if resA.Summary != resB.Summary {
				t.Fatalf("C=6 -> C=%d at %d: summaries differ:\nfull:    %+v\nresumed: %+v",
					cells, stop, resA.Summary, resB.Summary)
			}
		}
	}
}

// TestCrashResumeCellBoundaries extends the crash-injection sweep to
// the multi-cell engine: a C=6 run checkpoints at every event boundary;
// each checkpoint restores into a cell count that cycles through
// {6, 1, 3} and must finish with the uninterrupted monolith's canonical
// trace. Crashes therefore land inside migration windows, repair
// windows, and mid-consolidation — at every point in the stream — and
// every restore exercises either the same-C or the re-shard path.
func TestCrashResumeCellBoundaries(t *testing.T) {
	load := fragmentingTrace(24)
	mk := func(cells int, trace *bytes.Buffer) Config {
		cfg := cellCfg(cells, 3, trace)
		cfg.Requests = load
		return cfg
	}

	var refTrace bytes.Buffer
	ref, err := New(mk(1, &refTrace))
	if err != nil {
		t.Fatal(err)
	}
	resA := runToEnd(t, ref)
	fullCanon := canon(t, refTrace.Bytes())

	type point struct {
		at        uint64
		ckpt      []byte
		prefixLen int
	}
	var (
		prefixTrace bytes.Buffer
		points      []point
	)
	m, err := New(mk(6, &prefixTrace))
	if err != nil {
		t.Fatal(err)
	}
	for {
		var ckpt bytes.Buffer
		if err := m.Save(&ckpt); err != nil {
			t.Fatalf("save at event %d: %v", m.Dispatched(), err)
		}
		points = append(points, point{at: m.Dispatched(), ckpt: ckpt.Bytes(), prefixLen: prefixTrace.Len()})
		ok, err := m.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	t.Logf("sweeping %d checkpoints", len(points))
	targets := []int{6, 1, 3}
	for i, pt := range points {
		cells := targets[i%len(targets)]
		var tail bytes.Buffer
		m2, err := Restore(mk(cells, &tail), bytes.NewReader(pt.ckpt))
		if err != nil {
			t.Fatalf("restore into C=%d at event %d: %v", cells, pt.at, err)
		}
		resB := runToEnd(t, m2)
		combined := append(canon(t, prefixTrace.Bytes()[:pt.prefixLen]), canon(t, tail.Bytes())...)
		if !bytes.Equal(combined, fullCanon) {
			at, a, b := diffContext(fullCanon, combined)
			t.Fatalf("crash at event %d into C=%d: trace diverges at byte %d:\nfull:    ...%s\nresumed: ...%s",
				pt.at, cells, at, a, b)
		}
		if resA.Summary != resB.Summary {
			t.Fatalf("crash at event %d into C=%d: summaries differ:\nfull: %+v\nresumed: %+v",
				pt.at, cells, resA.Summary, resB.Summary)
		}
	}
}

// TestCellSnapshotSections pins the per-cell envelope sections: a
// sharded run's snapshot records its cell count and per-cell dispatch
// attribution summing exactly to the global count; a same-C restore
// resumes that attribution (byte-identical re-save, which the snapshot
// auditor also enforces every period); a monolith snapshot carries no
// cell sections at all.
func TestCellSnapshotSections(t *testing.T) {
	decode := func(ckpt []byte) simState {
		f, err := snapshot.Read(bytes.NewReader(ckpt))
		if err != nil {
			t.Fatal(err)
		}
		var st simState
		if err := json.Unmarshal(f.State, &st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	save := func(cells int, steps int) []byte {
		m, err := New(cellCfg(cells, 3, nil))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < steps; i++ {
			if ok, err := m.Step(); err != nil || !ok {
				t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
			}
		}
		var ckpt bytes.Buffer
		if err := m.Save(&ckpt); err != nil {
			t.Fatal(err)
		}
		return ckpt.Bytes()
	}

	st := decode(save(6, 200))
	if st.Cells != 6 || len(st.CellDispatched) != 6 {
		t.Fatalf("sharded snapshot sections: cells=%d, dispatched len %d, want 6/6", st.Cells, len(st.CellDispatched))
	}
	var sum uint64
	for _, d := range st.CellDispatched {
		sum += d
	}
	if sum != st.Engine.Dispatched {
		t.Fatalf("per-cell dispatch attribution sums to %d, global is %d", sum, st.Engine.Dispatched)
	}

	mono := decode(save(1, 200))
	if mono.Cells != 0 || mono.CellDispatched != nil {
		t.Fatalf("monolith snapshot carries cell sections: cells=%d, dispatched=%v", mono.Cells, mono.CellDispatched)
	}

	// Same-C restore resumes attribution: restore the sharded checkpoint
	// and re-save; the per-cell sections must match bit-for-bit.
	m2, err := Restore(cellCfg(6, 3, nil), bytes.NewReader(save(6, 200)))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := m2.Save(&again); err != nil {
		t.Fatal(err)
	}
	st2 := decode(again.Bytes())
	if st2.Cells != st.Cells || len(st2.CellDispatched) != len(st.CellDispatched) {
		t.Fatalf("re-saved sections drifted: %+v vs %+v", st2.Cells, st.Cells)
	}
	for i := range st.CellDispatched {
		if st2.CellDispatched[i] != st.CellDispatched[i] {
			t.Fatalf("cell %d dispatch attribution drifted: %d vs %d", i, st2.CellDispatched[i], st.CellDispatched[i])
		}
	}
}

// TestCellScopedCountersAggregate is the satellite-5 regression: in a
// sharded run the core.sparse_shape_overflow counter must double-book
// per cell with NO shared-sink hazard — the per-cell "@cellK" counters
// sum exactly to the base counter — and enabling the audit (whose
// SparseCheck builds its own sparse matrices) must not inflate the
// run's counter, because the check detaches the observer while it works.
func TestCellScopedCountersAggregate(t *testing.T) {
	run := func(cells int, mode string) (*obs.Observer, *Result) {
		d := policy.NewDynamic()
		d.Opts.CandidateK = 1 // tiny budget: overflow is routine
		cfg := cellCfg(cells, 3, nil)
		cfg.Placer = d
		cfg.Obs = obs.New()
		switch mode {
		case "event":
			cfg.Audit = audit.Event
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("cells=%d audit=%s: %v", cells, mode, err)
		}
		return cfg.Obs, res
	}

	o, _ := run(3, "off")
	base := o.Reg.Counter("core.sparse_shape_overflow").Value()
	if base == 0 {
		t.Fatal("scenario produced no shape overflows; tighten CandidateK")
	}
	var sum int64
	for c := 0; c < 3; c++ {
		sum += o.Reg.Counter(fmt.Sprintf("core.sparse_shape_overflow@cell%d", c)).Value()
	}
	if sum != base {
		t.Fatalf("per-cell overflow counters sum to %d, base counter is %d (shared-sink hazard)", sum, base)
	}

	// The audit must observe, not perturb: same run with the full event
	// audit on, same counter value.
	oa, _ := run(3, "event")
	audited := oa.Reg.Counter("core.sparse_shape_overflow").Value()
	if audited != base {
		t.Fatalf("audit inflated the overflow counter: %d with audit, %d without", audited, base)
	}

	// And the monolith agrees with the sharded run on the global total —
	// the counter is part of the "same decisions" contract.
	om, _ := run(1, "off")
	mono := om.Reg.Counter("core.sparse_shape_overflow").Value()
	if mono != base {
		t.Fatalf("overflow counter differs across cell counts: monolith %d, cells %d", mono, base)
	}
}

// TestCellConfigValidation pins the Config.Cells rejection rules at the
// sim API layer.
func TestCellConfigValidation(t *testing.T) {
	for _, tc := range []struct {
		cells int
		ok    bool
	}{{-1, false}, {0, true}, {1, true}, {6, true}, {7, false}} {
		cfg := Config{DC: smallFleet(), Placer: policy.NewDynamic(), Requests: reqs(2, 10, 100), Cells: tc.cells}
		_, err := New(cfg)
		if tc.ok && err != nil {
			t.Errorf("Cells=%d rejected: %v", tc.cells, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("Cells=%d accepted (fleet is %d PMs)", tc.cells, smallFleet().Size())
		}
	}
}

// TestCellTraceStamp verifies the cell stamp plumbing end to end: a
// sharded traced run emits "cell" on dispatched events, the monolith
// never does, and canonicalization strips the stamp so the two byte
// streams are identical.
func TestCellTraceStamp(t *testing.T) {
	var mono, cells bytes.Buffer
	if _, err := Run(cellCfg(1, 3, &mono)); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cellCfg(3, 3, &cells)); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(mono.Bytes(), []byte(`,"cell":`)) {
		t.Error("monolith trace carries cell stamps")
	}
	if !bytes.Contains(cells.Bytes(), []byte(`,"cell":`)) {
		t.Error("sharded trace carries no cell stamps")
	}
	// Stamps sit before wall, never after.
	if bytes.Contains(cells.Bytes(), []byte(`"wall":`)) == false {
		t.Fatal("trace has no wall fields?")
	}
	if !bytes.Equal(canon(t, mono.Bytes()), canon(t, cells.Bytes())) {
		t.Error("canonical traces differ across cell counts")
	}
}

// FuzzCellOrchestrator is the randomized cell-differential: the fuzzer
// picks the workload shape, failure seed, cell count, a checkpoint
// boundary, and a (possibly different) restore cell count; the harness
// runs the monolith reference, runs the sharded world, crashes it at
// the boundary, re-shards it into the second cell count, and demands
// the stitched canonical trace and final Result match the reference
// bit-exactly. Arrivals, departures, failures, re-queues, migration
// holds, and control ticks all flow through whatever cell layout the
// bytes chose.
func FuzzCellOrchestrator(f *testing.F) {
	f.Add(int64(0), int64(1), uint64(2), uint64(3), uint64(1))
	f.Add(int64(1), int64(3), uint64(6), uint64(97), uint64(3))
	f.Add(int64(2), int64(5), uint64(3), uint64(211), uint64(6))
	f.Add(int64(7), int64(2), uint64(5), uint64(50), uint64(2))
	f.Add(int64(12), int64(8), uint64(4), uint64(500), uint64(1))

	f.Fuzz(func(t *testing.T, variant, failSeed int64, cellPick, stopPick, resharPick uint64) {
		fleetSize := smallFleet().Size()
		cellsA := 2 + int(cellPick%uint64(fleetSize-1))   // 2..fleet
		cellsB := 1 + int(resharPick%uint64(fleetSize))   // 1..fleet
		load := fragmentingTrace(20 + int(variant&3)*10)  // 20..50 requests
		mk := func(cells int, trace *bytes.Buffer) Config {
			cfg := cellCfg(cells, 1+(failSeed&0xffff)%1000, trace)
			cfg.Requests = load
			cfg.TimedMigrations = variant&4 != 0
			if variant&8 != 0 {
				cfg.Spare = nil
			}
			return cfg
		}

		var refTrace bytes.Buffer
		ref, err := New(mk(1, &refTrace))
		if err != nil {
			t.Fatal(err)
		}
		resA := runToEnd(t, ref)
		total := ref.Dispatched()
		if total < 2 {
			t.Skip("degenerate run")
		}
		refCanon := canon(t, refTrace.Bytes())

		// Sharded world, crashed at the chosen boundary.
		stop := 1 + stopPick%(total-1)
		var prefix bytes.Buffer
		m, err := New(mk(cellsA, &prefix))
		if err != nil {
			t.Fatal(err)
		}
		for m.Dispatched() < stop {
			if ok, err := m.Step(); err != nil || !ok {
				t.Fatalf("cells=%d step: ok=%v err=%v", cellsA, ok, err)
			}
		}
		var ckpt bytes.Buffer
		if err := m.Save(&ckpt); err != nil {
			t.Fatalf("cells=%d save at %d: %v", cellsA, stop, err)
		}

		// Re-sharded resume.
		var tail bytes.Buffer
		m2, err := Restore(mk(cellsB, &tail), bytes.NewReader(ckpt.Bytes()))
		if err != nil {
			t.Fatalf("restore C=%d -> C=%d at %d/%d: %v", cellsA, cellsB, stop, total, err)
		}
		resB := runToEnd(t, m2)

		combined := append(canon(t, prefix.Bytes()), canon(t, tail.Bytes())...)
		if !bytes.Equal(combined, refCanon) {
			at, a, b := diffContext(refCanon, combined)
			t.Fatalf("variant %d C=%d->%d crash at %d/%d: trace diverges at byte %d:\nmonolith: ...%s\nstitched: ...%s",
				variant, cellsA, cellsB, stop, total, at, a, b)
		}
		if resA.Summary != resB.Summary {
			t.Fatalf("variant %d C=%d->%d crash at %d: summaries differ:\nmonolith: %+v\nstitched: %+v",
				variant, cellsA, cellsB, stop, resA.Summary, resB.Summary)
		}
	})
}

// TestCellFleetScaledSmoke runs a moderately larger sharded fleet
// (64 PMs, 16 cells, balanced-with-remainder partition at 17 cells) to
// catch range arithmetic that a 6-PM fleet cannot, comparing against
// the monolith end to end.
func TestCellFleetScaledSmoke(t *testing.T) {
	mk := func(cells int, trace *bytes.Buffer) Config {
		sc := spare.DefaultConfig()
		cfg := Config{
			DC:       cluster.TableIIFleetScaled(64),
			Placer:   policy.NewDynamic(),
			Requests: fragmentingTrace(120),
			Spare:    &sc,
			Failures: failure.Config{
				MTBF: 20000, RepairTime: 120,
				ReliabilityDecay: 0.9, MinReliability: 0.2, Seed: 2,
			},
			WarmStart: 4,
			Cells:     cells,
		}
		if trace != nil {
			cfg.Obs = obs.NewTracing(trace)
		}
		return cfg
	}
	var ref bytes.Buffer
	if _, err := Run(mk(1, &ref)); err != nil {
		t.Fatal(err)
	}
	refCanon := canon(t, ref.Bytes())
	for _, cells := range []int{16, 17, 64} {
		var trace bytes.Buffer
		if _, err := Run(mk(cells, &trace)); err != nil {
			t.Fatalf("cells=%d: %v", cells, err)
		}
		if !bytes.Equal(canon(t, trace.Bytes()), refCanon) {
			at, a, b := diffContext(refCanon, canon(t, trace.Bytes()))
			t.Fatalf("cells=%d: trace diverges at byte %d:\nmonolith: ...%s\ncells:    ...%s", cells, at, a, b)
		}
	}
}
