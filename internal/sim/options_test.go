package sim

import (
	"strings"
	"testing"

	"repro/internal/policy"
)

func TestWarmStartPowersOnPMs(t *testing.T) {
	res, err := Run(Config{
		DC:        smallFleet(),
		Placer:    policy.FirstFit{},
		Requests:  reqs(5, 1, 600),
		WarmStart: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With machines already on, the first arrivals place immediately.
	if res.Summary.QueuedFraction != 0 {
		t.Errorf("warm start still queued %.2f%% of requests", res.Summary.QueuedFraction*100)
	}
	if got := res.ActivePMs.At(0); got != 3 {
		t.Errorf("t=0 active sample = %g, want 3", got)
	}
}

func TestWarmStartValidation(t *testing.T) {
	bad := []int{-1, 7} // fleet has 6 PMs
	for _, w := range bad {
		_, err := Run(Config{DC: smallFleet(), Placer: policy.FirstFit{}, Requests: reqs(1, 1, 10), WarmStart: w})
		if err == nil {
			t.Errorf("warm start %d accepted", w)
		}
	}
}

func TestEventLogRecordsLifecycle(t *testing.T) {
	var log strings.Builder
	_, err := Run(Config{
		DC:       smallFleet(),
		Placer:   policy.NewDynamic(),
		Requests: fragmentingTrace(20),
		EventLog: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := log.String()
	for _, marker := range []string{"arrive", "place", "depart", "boot", "migrate", "shutdown"} {
		if !strings.Contains(out, marker) {
			t.Errorf("event log missing %q records", marker)
		}
	}
	// Timestamps lead each line.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n")[:5] {
		if len(line) < 12 {
			t.Fatalf("malformed log line %q", line)
		}
	}
}

func TestEventLogDisabledByDefault(t *testing.T) {
	// Purely smoke: a nil EventLog must not panic anywhere.
	if _, err := Run(Config{DC: smallFleet(), Placer: policy.FirstFit{}, Requests: reqs(3, 1, 60)}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanUtilizationSeries(t *testing.T) {
	dyn, err := Run(Config{DC: smallFleet(), Placer: policy.NewDynamic(), Requests: fragmentingTrace(60)})
	if err != nil {
		t.Fatal(err)
	}
	ff, err := Run(Config{DC: smallFleet(), Placer: policy.FirstFit{}, Requests: fragmentingTrace(60)})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.MeanUtilization.Len() != dyn.ActivePMs.Len() {
		t.Fatal("utilization series length mismatch")
	}
	for _, u := range dyn.MeanUtilization.Values {
		if u < 0 || u > 1 {
			t.Fatalf("utilization sample %g outside [0,1]", u)
		}
	}
	// The consolidating scheme should sustain at least the static
	// scheme's packing density on this fragmenting trace.
	if dyn.MeanUtilization.Mean() < ff.MeanUtilization.Mean()-0.02 {
		t.Errorf("dynamic mean utilization %.3f below first-fit %.3f",
			dyn.MeanUtilization.Mean(), ff.MeanUtilization.Mean())
	}
}
