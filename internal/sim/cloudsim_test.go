package sim

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/failure"
	"repro/internal/policy"
	"repro/internal/spare"
	"repro/internal/workload"
)

// smallFleet builds a 2-fast + 4-slow datacenter.
func smallFleet() *cluster.Datacenter {
	fast := cluster.FastClass
	slow := cluster.SlowClass
	return cluster.MustNew(cluster.Config{
		RMin: cluster.TableIIRMin.Clone(),
		Groups: []cluster.Group{
			{Class: &fast, Count: 2},
			{Class: &slow, Count: 4},
		},
	})
}

// reqs builds n single-core requests arriving every gap seconds, each
// running for run seconds.
func reqs(n int, gap, run float64) []workload.Request {
	out := make([]workload.Request, n)
	for i := range out {
		out[i] = workload.Request{
			JobID: i + 1, Submit: float64(i) * gap,
			CPUCores: 1, MemoryGB: 0.5,
			EstimatedRunTime: run, RunTime: run,
		}
	}
	return out
}

func TestRunConfigValidation(t *testing.T) {
	good := Config{DC: smallFleet(), Placer: policy.FirstFit{}, Requests: reqs(1, 1, 10)}
	if _, err := Run(good); err != nil {
		t.Fatalf("good config failed: %v", err)
	}
	bad := []Config{
		{Placer: policy.FirstFit{}},
		{DC: smallFleet()},
		{DC: smallFleet(), Placer: policy.FirstFit{}, ControlPeriod: -1},
		{DC: smallFleet(), Placer: policy.FirstFit{}, MeterBin: -1},
		{DC: smallFleet(), Placer: policy.FirstFit{}, Failures: failure.Config{MTBF: -1}},
		{DC: smallFleet(), Placer: policy.FirstFit{},
			Requests: []workload.Request{{Submit: 5, CPUCores: 1, MemoryGB: 1, RunTime: 1}, {Submit: 1, CPUCores: 1, MemoryGB: 1, RunTime: 1}}},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestRunCompletesAllVMs(t *testing.T) {
	for _, name := range []string{"first-fit", "best-fit", "worst-fit", "random", "dynamic"} {
		p, err := policy.ByName(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			DC:              smallFleet(),
			Placer:          p,
			Requests:        reqs(40, 120, 3000),
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Summary.VMsCompleted != 40 {
			t.Errorf("%s: completed %d/40", name, res.Summary.VMsCompleted)
		}
		if res.Summary.TotalEnergyKWh <= 0 {
			t.Errorf("%s: no energy recorded", name)
		}
		if res.Scheme != name {
			t.Errorf("scheme = %q", res.Scheme)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(Config{
			DC:       smallFleet(),
			Placer:   policy.NewDynamic(),
			Requests: reqs(60, 90, 2500),
			Spare:    func() *spare.Config { c := spare.DefaultConfig(); return &c }(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Summary.TotalEnergyKWh != b.Summary.TotalEnergyKWh {
		t.Errorf("energy differs: %g vs %g", a.Summary.TotalEnergyKWh, b.Summary.TotalEnergyKWh)
	}
	if len(a.Moves) != len(b.Moves) {
		t.Errorf("moves differ: %d vs %d", len(a.Moves), len(b.Moves))
	}
	if a.ActivePMs.Len() != b.ActivePMs.Len() {
		t.Fatalf("series lengths differ")
	}
	for i := range a.ActivePMs.Values {
		if a.ActivePMs.Values[i] != b.ActivePMs.Values[i] {
			t.Fatalf("active series diverges at %d", i)
		}
	}
}

func TestRunEnergyMatchesSeries(t *testing.T) {
	res, err := Run(Config{
		DC:       smallFleet(),
		Placer:   policy.FirstFit{},
		Requests: reqs(20, 200, 4000),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.EnergyKWh.Values {
		sum += v
	}
	if math.Abs(sum-res.Summary.TotalEnergyKWh) > 1e-9*(1+sum) {
		t.Errorf("series sum %g != total %g", sum, res.Summary.TotalEnergyKWh)
	}
}

func TestRunBootsOnDemandAndShutsDown(t *testing.T) {
	res, err := Run(Config{
		DC:       smallFleet(),
		Placer:   policy.FirstFit{},
		Requests: reqs(10, 60, 1200),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Boots == 0 {
		t.Error("no PMs were booted")
	}
	// After the run everything idles and the power policy (spare target
	// 0) has shut the fleet down; the final active samples must be 0.
	last := res.ActivePMs.At(res.ActivePMs.Len() - 1)
	if last != 0 {
		t.Errorf("final active sample = %g, want 0", last)
	}
}

func TestRunQueueingWhenColdStart(t *testing.T) {
	// First arrivals find everything off; they must wait ~boot time.
	res, err := Run(Config{
		DC:       smallFleet(),
		Placer:   policy.FirstFit{},
		Requests: reqs(5, 1, 600),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.QueuedFraction == 0 {
		t.Error("cold-start arrivals did not queue")
	}
	if res.Summary.MeanWaitSeconds <= 0 {
		t.Error("no wait recorded")
	}
	if res.Summary.VMsCompleted != 5 {
		t.Errorf("completed = %d", res.Summary.VMsCompleted)
	}
}

func TestRunDynamicMigrates(t *testing.T) {
	// Staggered arrivals/departures fragment load so the dynamic scheme
	// has migrations to perform.
	var rs []workload.Request
	for i := 0; i < 30; i++ {
		run := 2000.0
		if i%2 == 0 {
			run = 9000
		}
		rs = append(rs, workload.Request{
			JobID: i, Submit: float64(i) * 50, CPUCores: 1, MemoryGB: 1,
			EstimatedRunTime: run, RunTime: run,
		})
	}
	res, err := Run(Config{
		DC:              smallFleet(),
		Placer:          policy.NewDynamic(),
		Requests:        rs,
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) == 0 {
		t.Error("dynamic scheme performed no migrations")
	}
	if res.Summary.Migrations != len(res.Moves) {
		t.Error("summary migration count mismatch")
	}
}

func TestRunStaticNeverMigrates(t *testing.T) {
	res, err := Run(Config{
		DC:       smallFleet(),
		Placer:   policy.BestFit{},
		Requests: reqs(30, 100, 2000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) != 0 {
		t.Errorf("static scheme migrated %d times", len(res.Moves))
	}
}

func TestRunSpareControllerKeepsIdleCapacity(t *testing.T) {
	sc := spare.DefaultConfig()
	sc.Period = 600
	res, err := Run(Config{
		DC:            smallFleet(),
		Placer:        policy.NewDynamic(),
		Requests:      reqs(200, 30, 1800), // steady stream, 2 arrivals/min
		ControlPeriod: 600,
		Spare:         &sc,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SparePlans) == 0 {
		t.Fatal("no spare plans recorded")
	}
	positive := 0
	for _, p := range res.SparePlans {
		if p.Spares > 0 {
			positive++
		}
		if p.Spares < 0 {
			t.Fatalf("negative spare plan: %+v", p)
		}
	}
	if positive == 0 {
		t.Error("spare controller never requested spares under steady load")
	}
}

func TestRunSpareReducesQueueing(t *testing.T) {
	// With spares pre-booted, fewer arrivals should queue than without.
	load := reqs(300, 20, 1500)
	noSpare, err := Run(Config{DC: smallFleet(), Placer: policy.NewDynamic(), Requests: load})
	if err != nil {
		t.Fatal(err)
	}
	sc := spare.DefaultConfig()
	withSpare, err := Run(Config{DC: smallFleet(), Placer: policy.NewDynamic(), Requests: load, Spare: &sc})
	if err != nil {
		t.Fatal(err)
	}
	if withSpare.Summary.QueuedFraction > noSpare.Summary.QueuedFraction {
		t.Errorf("spares increased queueing: %.3f vs %.3f",
			withSpare.Summary.QueuedFraction, noSpare.Summary.QueuedFraction)
	}
}

func TestRunFailuresRequeueVMs(t *testing.T) {
	res, err := Run(Config{
		DC:       smallFleet(),
		Placer:   policy.NewDynamic(),
		Requests: reqs(40, 100, 5000),
		Failures: failure.Config{
			MTBF: 20000, RepairTime: 300,
			ReliabilityDecay: 0.8, MinReliability: 0.1, Seed: 3,
		},
		CheckInvariants: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Skip("no failures sampled with this seed/MTBF; adjust seed")
	}
	if res.Summary.VMsCompleted != 40 {
		t.Errorf("completed %d/40 despite failures", res.Summary.VMsCompleted)
	}
}

func TestRunRejectsImpossibleRequests(t *testing.T) {
	rs := reqs(3, 10, 100)
	rs[1].MemoryGB = 10000 // fits nowhere
	res, err := Run(Config{DC: smallFleet(), Placer: policy.FirstFit{}, Requests: rs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", res.Summary.Rejected)
	}
	if res.Summary.VMsCompleted != 2 {
		t.Errorf("completed = %d, want 2", res.Summary.VMsCompleted)
	}
}

func TestRunActiveSeriesSampledHourly(t *testing.T) {
	res, err := Run(Config{
		DC:       smallFleet(),
		Placer:   policy.FirstFit{},
		Requests: reqs(8, 1800, 7200), // spans several hours
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ActivePMs.Step != 3600 {
		t.Errorf("series step = %g", res.ActivePMs.Step)
	}
	if res.ActivePMs.Len() < 4 {
		t.Errorf("series too short: %d", res.ActivePMs.Len())
	}
	if res.ActivePMs.At(0) != 0 {
		t.Errorf("t=0 sample = %g, want 0 (cold start)", res.ActivePMs.At(0))
	}
}

func TestRunDynamicBeatsFirstFitOnEnergy(t *testing.T) {
	// The headline claim in miniature: alternating short/long jobs cause
	// fragmentation that only the dynamic scheme can consolidate away.
	var rs []workload.Request
	for i := 0; i < 120; i++ {
		run := 1200.0
		if i%3 == 0 {
			run = 20000
		}
		rs = append(rs, workload.Request{
			JobID: i, Submit: float64(i) * 40, CPUCores: 1, MemoryGB: 0.5,
			EstimatedRunTime: run, RunTime: run,
		})
	}
	ff, err := Run(Config{DC: smallFleet(), Placer: policy.FirstFit{}, Requests: rs})
	if err != nil {
		t.Fatal(err)
	}
	dyn, err := Run(Config{DC: smallFleet(), Placer: policy.NewDynamic(), Requests: rs})
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Summary.TotalEnergyKWh >= ff.Summary.TotalEnergyKWh {
		t.Errorf("dynamic %.2f kWh did not beat first-fit %.2f kWh",
			dyn.Summary.TotalEnergyKWh, ff.Summary.TotalEnergyKWh)
	}
	if dyn.Summary.MeanActivePMs >= ff.Summary.MeanActivePMs {
		t.Errorf("dynamic mean active %.2f did not beat first-fit %.2f",
			dyn.Summary.MeanActivePMs, ff.Summary.MeanActivePMs)
	}
}

func TestRunSpareTradesEnergyForHeadroom(t *testing.T) {
	// The spare controller's whole point (Section IV) is holding idle
	// capacity for QoS: under relentless load it must keep at least as
	// many PMs active as the bare dynamic scheme, costing energy.
	var rs []workload.Request
	for i := 0; i < 120; i++ {
		run := 1200.0
		if i%3 == 0 {
			run = 20000
		}
		rs = append(rs, workload.Request{
			JobID: i, Submit: float64(i) * 40, CPUCores: 1, MemoryGB: 0.5,
			EstimatedRunTime: run, RunTime: run,
		})
	}
	bare, err := Run(Config{DC: smallFleet(), Placer: policy.NewDynamic(), Requests: rs})
	if err != nil {
		t.Fatal(err)
	}
	sc := spare.DefaultConfig()
	spared, err := Run(Config{DC: smallFleet(), Placer: policy.NewDynamic(), Requests: rs, Spare: &sc})
	if err != nil {
		t.Fatal(err)
	}
	if spared.Summary.MeanActivePMs < bare.Summary.MeanActivePMs {
		t.Errorf("spare controller kept fewer PMs active (%.2f) than bare dynamic (%.2f)",
			spared.Summary.MeanActivePMs, bare.Summary.MeanActivePMs)
	}
}
