package sim

import (
	"bytes"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/policy"
	"repro/internal/spare"
	"repro/internal/vector"
	"repro/internal/workload"
)

// mixedLoad builds a workload with varied shapes and bursts so migrations,
// boots, queueing, and spare decisions all occur.
func mixedLoad() []workload.Request {
	var out []workload.Request
	id := 0
	add := func(at, run, cpu, mem float64) {
		id++
		out = append(out, workload.Request{
			JobID: id, Submit: at,
			CPUCores: cpu, MemoryGB: mem,
			EstimatedRunTime: run, RunTime: run,
		})
	}
	for i := 0; i < 40; i++ {
		at := float64(i) * 120
		add(at, 3000+float64(i%7)*500, 1, 0.5)
		if i%3 == 0 {
			add(at, 1500, 2, 1)
		}
		if i%5 == 0 {
			add(at+1, 6000, 1, 1) // same-second sibling exercises FIFO ties
		}
	}
	return out
}

// TestRunByteIdenticalTrace is the strongest determinism statement the
// simulator can make: two runs of an identical configuration — with
// failures, timed migrations, and the spare controller all active — must
// produce byte-identical event logs, identical move lists, and identical
// summaries. Any hidden map iteration or unsorted slice in an event
// handler shows up here as a trace diff.
func TestRunByteIdenticalTrace(t *testing.T) {
	run := func() (*Result, *bytes.Buffer) {
		var trace bytes.Buffer
		sc := spare.DefaultConfig()
		res, err := Run(Config{
			DC:              smallFleet(),
			Placer:          policy.NewDynamic(),
			Requests:        mixedLoad(),
			Spare:           &sc,
			Failures: failure.Config{
				MTBF: 4e4, RepairTime: 5000, Seed: 11,
				ReliabilityDecay: 0.9, MinReliability: 0.5,
			},
			TimedMigrations: true,
			WarmStart:       2,
			EventLog:        &trace,
			Audit:           0, // exercised separately; keep this run lean
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, &trace
	}
	resA, traceA := run()
	resB, traceB := run()

	if !bytes.Equal(traceA.Bytes(), traceB.Bytes()) {
		a, b := traceA.Bytes(), traceB.Bytes()
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		at := 0
		for at < n && a[at] == b[at] {
			at++
		}
		lo := at - 120
		if lo < 0 {
			lo = 0
		}
		hi := at + 120
		if hi > n {
			hi = n
		}
		t.Fatalf("event logs diverge at byte %d:\nA: ...%s\nB: ...%s", at, a[lo:hi], b[lo:hi])
	}
	if len(resA.Moves) != len(resB.Moves) {
		t.Fatalf("move counts differ: %d vs %d", len(resA.Moves), len(resB.Moves))
	}
	for i := range resA.Moves {
		if resA.Moves[i] != resB.Moves[i] {
			t.Fatalf("move %d differs: %+v vs %+v", i, resA.Moves[i], resB.Moves[i])
		}
	}
	if resA.Summary != resB.Summary {
		t.Fatalf("summaries differ:\nA: %+v\nB: %+v", resA.Summary, resB.Summary)
	}
	if len(resA.SparePlans) != len(resB.SparePlans) {
		t.Fatalf("spare plan counts differ: %d vs %d", len(resA.SparePlans), len(resB.SparePlans))
	}
	for i := range resA.SparePlans {
		if resA.SparePlans[i] != resB.SparePlans[i] {
			t.Fatalf("spare plan %d differs", i)
		}
	}
}

// TestMigratableVMsSorted asserts the explicit ordering contract
// Algorithm 1's tie-breaking depends on: migratable VMs come back sorted
// by ID no matter how placements are scattered across PMs.
func TestMigratableVMsSorted(t *testing.T) {
	dc := smallFleet()
	res, err := Run(Config{
		DC:       dc,
		Placer:   policy.NewDynamic(),
		Requests: mixedLoad()[:30],
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	// Mid-run ordering is covered by the audit fuzz harness; here assert
	// the invariant on a hand-scattered datacenter.
	dc2 := smallFleet()
	for _, pm := range dc2.PMs() {
		pm.State = cluster.PMOn
	}
	ids := []int{9, 2, 14, 5, 1, 11}
	for i, id := range ids {
		vm := cluster.NewVM(cluster.VMID(id), vector.New(1, 0.5), 1000, 1000, 0)
		if err := dc2.PM(cluster.PMID(i % dc2.Size())).Host(vm); err != nil {
			t.Fatal(err)
		}
		vm.State = cluster.VMRunning
	}
	vms := core.MigratableVMs(dc2)
	if len(vms) != len(ids) {
		t.Fatalf("got %d migratable VMs, want %d", len(vms), len(ids))
	}
	for i := 1; i < len(vms); i++ {
		if vms[i-1].ID >= vms[i].ID {
			t.Fatalf("MigratableVMs unsorted at %d: %d >= %d", i, vms[i-1].ID, vms[i].ID)
		}
	}
}
