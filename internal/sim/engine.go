// Package sim contains the discrete-event simulation engine and the cloud
// data-center simulation built on it.
//
// The engine is a calendar-queue DES scheduler: events carry a timestamp
// and a callback, and Run dispatches them in non-decreasing time order
// with FIFO tie-breaking (logical sequence numbers), so simulations are
// fully deterministic. Schedule, Cancel, and extraction are O(1)
// amortized, event records are recycled through a slab-backed freelist
// (the steady-state event loop allocates nothing), and cancellation
// unlinks immediately — no tombstones, so Pending() is an exact live
// count by construction. The cloud simulation (cloudsim.go) layers VM
// arrivals, departures, PM power transitions, failures, and control-
// period ticks on top.
//
// The frozen pre-rewrite binary-heap scheduler lives in
// internal/sim/schedheap; the scheduler fuzz and property tests require
// bit-identical dispatch order between the two, and cmd/benchreport
// measures the wheel against it for BENCH_engine.json.
package sim

import (
	"fmt"
	"math"
	"unsafe"
)

// Calendar-queue geometry. Bucket counts are powers of two so the
// bucket-of-year computation is a mask; the queue resizes between
// minBuckets and maxBuckets to keep the live population within a small
// constant factor of the bucket count.
const (
	minBuckets = 8
	maxBuckets = 1 << 21

	// slabSize is how many event records one freelist refill allocates;
	// amortized, Schedule allocates 1/slabSize objects per call while the
	// population grows and zero once it has peaked.
	slabSize = 256

	// histN is the dispatch-history window the adaptive width estimator
	// samples: the spacing of the last histN fired events is the best
	// predictor of near-future event density (far-future timers — e.g.
	// failure events days ahead — would skew a global min/max estimate).
	histN = 32

	// maxBucketG caps the global bucket index so the float→int conversion
	// in gFor can never overflow int64 for any (time, width) pair.
	maxBucketG = int64(1) << 62
)

// record is one scheduled event resident in the calendar queue: an
// intrusive node of its bucket's doubly-linked list, ordered by
// (at, seq). Records are owned by the engine and recycled through its
// freelist; the public Event handle carries the (record, seq) pair so a
// stale handle — one whose event already fired or was cancelled — can
// never act on a recycled record.
type record struct {
	at   float64
	seq  uint64 // engine-unique; 0 marks a free or fired record
	g    int64  // global bucket index: floor(at / width) under the current width
	fire func()
	tag  Tag // semantic kind for snapshot serialization; zero Kind = untagged

	prev, next *record
	owner      *Engine
}

// Event is a cancellation handle for a scheduled callback. It is a small
// value (copy freely; the zero value is inert): the handle pins the
// engine-unique sequence number of the event it was issued for, so Cancel
// and Live are safe no-ops after the event has fired, even though the
// underlying record has been recycled for a later event.
type Event struct {
	rec *record
	seq uint64
	at  float64
}

// Time returns the simulation time the event was scheduled for.
func (ev Event) Time() float64 { return ev.at }

// Live reports whether the event is still queued: not yet fired and not
// cancelled.
func (ev Event) Live() bool { return ev.rec != nil && ev.rec.seq == ev.seq }

// Cancel removes the event from the queue and reports whether it did.
// Cancelling an already-fired, already-cancelled, or zero-value handle is
// a no-op returning false. Cancellation is O(1): the record is unlinked
// from its bucket immediately and recycled — cancelled events never
// linger in the queue, so a long run that disarms many far-future timers
// (departures, failure events) cannot grow it.
func (ev Event) Cancel() bool {
	rec := ev.rec
	if rec == nil || rec.seq != ev.seq {
		return false
	}
	e := rec.owner
	e.unlink(rec)
	e.count--
	e.recycle(rec)
	e.maybeShrink()
	return true
}

// bucket is one calendar day: a doubly-linked list of records sorted by
// (at, seq).
type bucket struct {
	head, tail *record
}

// bucketsPerLine is how many 16-byte bucket headers fit one cache line.
const bucketsPerLine = 64 / int(unsafe.Sizeof(bucket{}))

// alignedBuckets returns a length-n bucket slice whose base sits on a
// 64-byte boundary, so the extraction search — which walks consecutive
// bucket heads until one qualifies — reads exactly four headers per cache
// line with no line straddled. The over-allocation is bucketsPerLine-1
// headers (48 bytes); if the runtime ever hands back a base that is not
// bucket-aligned (so the offset cannot land exactly on a line boundary),
// the slice is used as allocated — alignment here is an optimization, not
// a correctness requirement.
func alignedBuckets(n int) []bucket {
	raw := make([]bucket, n+bucketsPerLine-1)
	rem := uintptr(unsafe.Pointer(&raw[0])) % 64
	if rem == 0 {
		return raw[:n:n]
	}
	if rem%unsafe.Sizeof(bucket{}) != 0 {
		return raw[:n:n]
	}
	off := int((64 - rem) / unsafe.Sizeof(bucket{}))
	return raw[off : off+n : off+n]
}

// Engine is the event loop. The zero value is ready to use at time 0; an
// Engine must not be copied after first use.
type Engine struct {
	now        float64
	seq        uint64
	dispatched uint64

	// Calendar queue state: count live events spread over len(buckets)
	// buckets of width seconds each; cur is the global bucket cursor the
	// extraction search resumes from (an index into the infinite bucket
	// sequence, not the ring — bucket = cur & mask, year = cur / len).
	count   int
	buckets []bucket
	mask    int
	width   float64
	cur     int64

	free *record

	// seqShared, when set, replaces the engine-local seq counter with a
	// counter shared by several engines. The sharded multi-cell engine
	// points every per-cell Engine at one counter so sequence numbers are
	// unique ACROSS cells — which is what makes the orchestrator's merged
	// (at, seq) order identical to the order one monolithic engine would
	// have produced (DESIGN.md §14). nil (the default) keeps the local
	// counter; a single engine's behavior is unchanged.
	seqShared *uint64

	// hist is the ring of recent dispatch timestamps feeding the adaptive
	// width estimator at resize time.
	hist    [histN]float64
	histPos int
	histLen int
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Dispatched returns the number of events fired so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Pending returns the number of live events still queued. Cancellation is
// eager, so this is an exact count — a backlog of disarmed timers can
// never keep a simulation alive.
func (e *Engine) Pending() int { return e.count }

// Schedule queues fire to run at absolute time at. Scheduling in the past
// is a programming error and panics: a DES that silently reorders time
// produces subtly wrong results.
func (e *Engine) Schedule(at float64, fire func()) Event {
	return e.schedule(at, Tag{}, fire)
}

// ScheduleTag is Schedule with a semantic tag attached. Tagged events can
// be serialized by SnapshotEvents and rebuilt on restore; untagged events
// (plain Schedule) cannot, and make SnapshotEvents fail. The simulation
// layer tags every event it queues.
func (e *Engine) ScheduleTag(at float64, tag Tag, fire func()) Event {
	if tag.Kind == 0 {
		panic("sim: ScheduleTag with zero Kind; use Schedule for untagged events")
	}
	return e.schedule(at, tag, fire)
}

func (e *Engine) schedule(at float64, tag Tag, fire func()) Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", at, e.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("sim: scheduling event at invalid time %g", at))
	}
	if fire == nil {
		panic("sim: scheduling nil callback")
	}
	if e.buckets == nil {
		e.initQueue()
	}
	rec := e.alloc()
	rec.at = at
	rec.seq = e.nextSeq()
	rec.g = e.gFor(at)
	rec.fire = fire
	rec.tag = tag
	e.insert(rec)
	e.count++
	if e.count > 2*len(e.buckets) && len(e.buckets) < maxBuckets {
		e.resize(2 * len(e.buckets))
	}
	return Event{rec: rec, seq: rec.seq, at: at}
}

// nextSeq mints the next sequence number from the shared counter when
// one is attached, else from the engine's own.
func (e *Engine) nextSeq() uint64 {
	if e.seqShared != nil {
		*e.seqShared++
		return *e.seqShared
	}
	e.seq++
	return e.seq
}

// UseSharedSeq attaches a shared sequence counter. It must be called
// before the first Schedule — re-seating the counter mid-run would let
// two live events carry the same sequence number.
func (e *Engine) UseSharedSeq(ctr *uint64) {
	if e.seq != 0 || e.count != 0 || e.dispatched != 0 {
		panic("sim: UseSharedSeq on a used engine")
	}
	e.seqShared = ctr
}

// ScheduleAfter queues fire to run d seconds from now.
func (e *Engine) ScheduleAfter(d float64, fire func()) Event {
	return e.Schedule(e.now+d, fire)
}

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	rec := e.minRecord()
	if rec == nil {
		return false
	}
	e.unlink(rec)
	e.count--
	e.now = rec.at
	e.dispatched++
	e.noteDispatch(rec.at)
	fire := rec.fire
	// Recycle before firing: a Cancel of this event from inside its own
	// callback (or any later turn) sees a stale sequence number and is a
	// no-op, and the record is immediately reusable by nested Schedules.
	e.recycle(rec)
	e.maybeShrink()
	fire()
	return true
}

// HasPendingEvents reports whether any live event is queued. Together
// with PeekNextEventTime and ProcessNextEvent it is the cell.Queue
// decomposition of the engine, which the multi-cell orchestrator merges.
func (e *Engine) HasPendingEvents() bool { return e.count > 0 }

// PeekNextEventTime returns the (at, seq) ordering key of the next event
// to fire without dispatching it. ok is false when the queue is empty.
// Peeking may advance the extraction cursor (search state only); it
// never changes dispatch order.
func (e *Engine) PeekNextEventTime() (at float64, seq uint64, ok bool) {
	rec := e.minRecord()
	if rec == nil {
		return 0, 0, false
	}
	return rec.at, rec.seq, true
}

// ProcessNextEvent dispatches the next event, returning false when the
// queue is empty. It is Step under the cell.Queue interface's name.
func (e *Engine) ProcessNextEvent() bool { return e.Step() }

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time <= t, then advances the clock to t.
// Events scheduled beyond t remain queued.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%g) before now %g", t, e.now))
	}
	for {
		next := e.minRecord()
		if next == nil || next.at > t {
			break
		}
		e.Step()
	}
	e.now = t
}

// --- calendar queue internals ---

func (e *Engine) initQueue() {
	e.buckets = alignedBuckets(minBuckets)
	e.mask = minBuckets - 1
	e.width = 1
	e.cur = e.gFor(e.now)
}

// gFor maps an event time to its global bucket index under the current
// width. The mapping is monotone in at (IEEE division and truncation both
// are), which is what makes the year-window search order-correct; the
// clamp keeps the conversion in int64 range for any time/width pair.
func (e *Engine) gFor(at float64) int64 {
	q := at / e.width
	if q >= float64(maxBucketG) {
		return maxBucketG
	}
	return int64(q)
}

// alloc takes a record from the freelist, refilling it a slab at a time.
func (e *Engine) alloc() *record {
	if e.free == nil {
		slab := make([]record, slabSize)
		for i := range slab {
			slab[i].owner = e
			slab[i].next = e.free
			e.free = &slab[i]
		}
	}
	rec := e.free
	e.free = rec.next
	rec.next = nil
	return rec
}

// recycle returns a record to the freelist. Clearing seq invalidates
// every outstanding handle; clearing fire releases the closure to the GC.
func (e *Engine) recycle(rec *record) {
	rec.seq = 0
	rec.fire = nil
	rec.tag = Tag{}
	rec.prev = nil
	rec.next = e.free
	e.free = rec
}

// insert links rec into its bucket, keeping the list sorted by (at, seq).
// The scan starts at the tail: fresh events carry the highest seq so far,
// so same-time and ascending-time schedules (the common simulation
// patterns) insert in O(1).
func (e *Engine) insert(rec *record) {
	// Keep the extraction cursor at or before the earliest live record. A
	// peek that found only a far-future event (e.g. RunUntil stopping
	// short of it) legitimately parks the cursor way ahead of the clock;
	// a later schedule between the clock and that event must drag the
	// cursor back or the forward scan would start past it.
	if rec.g < e.cur {
		e.cur = rec.g
	}
	b := &e.buckets[int(rec.g)&e.mask]
	p := b.tail
	for p != nil && (p.at > rec.at || (p.at == rec.at && p.seq > rec.seq)) {
		p = p.prev
	}
	if p == nil {
		rec.next = b.head
		if b.head != nil {
			b.head.prev = rec
		} else {
			b.tail = rec
		}
		b.head = rec
	} else {
		rec.next = p.next
		rec.prev = p
		if p.next != nil {
			p.next.prev = rec
		} else {
			b.tail = rec
		}
		p.next = rec
	}
}

// unlink removes rec from its bucket's list.
func (e *Engine) unlink(rec *record) {
	b := &e.buckets[int(rec.g)&e.mask]
	if rec.prev != nil {
		rec.prev.next = rec.next
	} else {
		b.head = rec.next
	}
	if rec.next != nil {
		rec.next.prev = rec.prev
	} else {
		b.tail = rec.prev
	}
	rec.prev, rec.next = nil, nil
}

// minRecord returns the earliest (at, seq) record without removing it, or
// nil when the queue is empty. It resumes the search at the persistent
// cursor: a bucket head qualifies when its global index is within the
// cursor's window (heads are bucket minima and the index is monotone in
// time, so the first qualifying head is the global minimum — see the
// determinism property tests). If a whole year of buckets is empty, the
// search falls back to a direct scan of all bucket heads and jumps the
// cursor to the winner.
//
// The cursor never overtakes a live event: every live record r keeps
// r.g >= cur (insert drags the cursor back below any record landing
// before it, dispatch sets it to the dispatched minimum, and resize
// re-derives it from the clock), so the forward scan is exhaustive.
func (e *Engine) minRecord() *record {
	if e.count == 0 {
		return nil
	}
	cur := e.cur
	for i := 0; i < len(e.buckets); i++ {
		if h := e.buckets[int(cur)&e.mask].head; h != nil && h.g <= cur {
			e.cur = cur
			return h
		}
		cur++
	}
	var best *record
	for i := range e.buckets {
		h := e.buckets[i].head
		if h != nil && (best == nil || h.at < best.at || (h.at == best.at && h.seq < best.seq)) {
			best = h
		}
	}
	e.cur = best.g
	return best
}

// noteDispatch feeds the adaptive width estimator's dispatch-time ring.
func (e *Engine) noteDispatch(at float64) {
	e.hist[e.histPos] = at
	e.histPos = (e.histPos + 1) % histN
	if e.histLen < histN {
		e.histLen++
	}
}

// widthHint proposes a bucket width for the next geometry. Preference
// order: the spacing of recent dispatches (tracks the operating event
// rate and is immune to far-future outliers), then the span of the
// pending events (the only signal during a bulk pre-load), then the
// current width.
func (e *Engine) widthHint(minAt, maxAt float64) float64 {
	if e.histLen >= 8 {
		newest := e.hist[(e.histPos+histN-1)%histN]
		oldest := e.hist[0]
		if e.histLen == histN {
			oldest = e.hist[e.histPos]
		}
		if span := newest - oldest; span > 0 {
			return 3 * span / float64(e.histLen-1)
		}
	}
	if e.count > 1 {
		if span := maxAt - minAt; span > 0 {
			return 3 * span / float64(e.count)
		}
	}
	return e.width
}

// maybeShrink halves the bucket count when the population has dropped
// well below it. Growth is checked inline in Schedule; both thresholds
// leave a wide hysteresis band so a population oscillating around a
// boundary does not thrash the geometry.
func (e *Engine) maybeShrink() {
	if len(e.buckets) > minBuckets && 2*e.count < len(e.buckets) {
		e.resize(len(e.buckets) / 2)
	}
}

// resize re-buckets every live record into n buckets with a freshly
// estimated width. O(count), amortized across the schedules/removals that
// moved the population across a threshold.
func (e *Engine) resize(n int) {
	var chain *record
	minAt, maxAt := math.Inf(1), math.Inf(-1)
	for i := range e.buckets {
		for rec := e.buckets[i].head; rec != nil; {
			next := rec.next
			rec.prev = nil
			rec.next = chain
			chain = rec
			if rec.at < minAt {
				minAt = rec.at
			}
			if rec.at > maxAt {
				maxAt = rec.at
			}
			rec = next
		}
		e.buckets[i] = bucket{}
	}
	if n != len(e.buckets) {
		e.buckets = alignedBuckets(n)
		e.mask = n - 1
	}
	w := e.widthHint(minAt, maxAt)
	if !(w > 0) || math.IsInf(w, 0) {
		w = 1
	}
	e.width = w
	e.cur = e.gFor(e.now)
	for rec := chain; rec != nil; {
		next := rec.next
		rec.prev, rec.next = nil, nil
		rec.g = e.gFor(rec.at)
		e.insert(rec)
		rec = next
	}
}

// VerifyQueue walks the whole calendar and checks its structural
// invariants: the live-event count matches a full queue walk, every
// bucket list is consistently linked and sorted by (at, seq), every
// record sits in the bucket its time maps to under the current width, and
// no event is scheduled before the current clock. The invariant auditor
// (internal/audit) runs it as the per-event "queue" check; it is O(count)
// and allocation-free.
func (e *Engine) VerifyQueue() error {
	walked := 0
	for i := range e.buckets {
		b := &e.buckets[i]
		var prev *record
		for rec := b.head; rec != nil; rec = rec.next {
			walked++
			if walked > e.count {
				break // count mismatch reported below; avoid cycles running away
			}
			if rec.seq == 0 {
				return fmt.Errorf("sim: queue holds a recycled record in bucket %d", i)
			}
			if rec.owner != e {
				return fmt.Errorf("sim: bucket %d holds a record owned by another engine", i)
			}
			if rec.prev != prev {
				return fmt.Errorf("sim: broken prev link in bucket %d", i)
			}
			if prev != nil && (prev.at > rec.at || (prev.at == rec.at && prev.seq > rec.seq)) {
				return fmt.Errorf("sim: bucket %d out of order: (%g, %d) before (%g, %d)",
					i, prev.at, prev.seq, rec.at, rec.seq)
			}
			if g := e.gFor(rec.at); g != rec.g {
				return fmt.Errorf("sim: record at t=%g carries bucket index %d, want %d", rec.at, rec.g, g)
			}
			if int(rec.g)&e.mask != i {
				return fmt.Errorf("sim: record with index %d resident in bucket %d, want %d",
					rec.g, i, int(rec.g)&e.mask)
			}
			if rec.at < e.now {
				return fmt.Errorf("sim: queued event at t=%g is before now %g", rec.at, e.now)
			}
			if rec.g < e.cur {
				return fmt.Errorf("sim: record with bucket index %d is behind the cursor %d", rec.g, e.cur)
			}
			prev = rec
		}
		if b.tail != prev {
			return fmt.Errorf("sim: bucket %d tail does not terminate its list", i)
		}
	}
	if walked != e.count {
		return fmt.Errorf("sim: live-event count %d != full queue walk %d", e.count, walked)
	}
	return nil
}
