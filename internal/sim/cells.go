package sim

import (
	"fmt"
	"sort"

	"repro/internal/cell"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
)

// This file is the multi-cell engine: Config.Cells > 1 partitions the
// fleet into C cells, each owning its own calendar queue, and a
// shared-clock orchestrator (internal/cell) advances them in global
// (at, seq) order. The per-cell engines share ONE sequence counter, so
// the merged order is not merely "a" deterministic order — it is the
// exact order the monolithic engine produces for the same run, which is
// what the cell-differential golden battery asserts byte-for-byte.
//
// Events are routed to cells by their snapshot tag: VM-lifecycle events
// follow the VM's cell ((id-1) mod C), PM-lifecycle events follow the
// PM's contiguous ID range, and the control tick — a global concern —
// lives on cell 0. Cross-cell work (the global spare budget, failure
// injection's single RNG stream, consolidation moves that cross a cell
// boundary) happens inside handlers fired from the orchestrator step,
// never by one cell reaching into another's queue.

// scheduler is the engine seam the simulation layer drives. Both the
// monolithic *Engine and the sharded multi-cell engine satisfy it; the
// simulator neither knows nor cares which it got, and with Cells <= 1
// it gets a plain *Engine — the exact pre-cell code path.
type scheduler interface {
	Now() float64
	Dispatched() uint64
	Pending() int
	Step() bool
	ScheduleTag(at float64, tag Tag, fire func()) Event
	VerifyQueue() error
	SnapshotState() (EngineState, error)
	RestoreState(st EngineState, rebuild func(QueuedEvent) func()) ([]Event, error)
}

// newScheduler builds the engine for a run: monolithic for cells <= 1,
// sharded otherwise. fleet is the PM count (cells must already be
// validated against it by Config.setDefaults).
func newScheduler(cells, fleet int, o *obs.Observer) scheduler {
	if cells <= 1 {
		return &Engine{}
	}
	part, err := cell.NewPartition(cells, fleet)
	if err != nil {
		panic(fmt.Sprintf("sim: %v", err)) // unreachable: setDefaults validated
	}
	sh := &shardedEngine{part: part, obs: o}
	sh.cells = make([]*Engine, cells)
	queues := make([]cell.Queue, cells)
	for i := range sh.cells {
		e := &Engine{}
		e.UseSharedSeq(&sh.seqCtr)
		sh.cells[i] = e
		queues[i] = e
	}
	sh.orch = cell.NewOrchestrator(queues)
	return sh
}

// shardedEngine is C per-cell calendar queues behind one scheduler
// facade. The global clock, dispatch count, and sequence counter live
// here; each cell engine's local clock lags the global one (it only
// advances when that cell fires) and its local seq counter is unused.
type shardedEngine struct {
	part  cell.Partition
	cells []*Engine
	orch  *cell.Orchestrator
	obs   *obs.Observer

	now        float64
	seqCtr     uint64
	dispatched uint64

	// restoreDisp carries per-cell dispatch counts from a same-C
	// checkpoint into RestoreState (nil on a cross-C re-shard restore,
	// where per-cell attribution restarts at zero).
	restoreDisp []uint64

	// verifySeen is VerifyQueue's duplicate-sequence scratch, kept on the
	// engine so the per-event audit does not allocate a fresh map for
	// every check (the map grows to the high-water pending count once and
	// is cleared in place thereafter).
	verifySeen map[uint64]struct{}
}

// route maps an event tag to its owning cell. VM events follow the VM,
// PM events follow the PM, and the control tick anchors on cell 0.
func (sh *shardedEngine) route(tag Tag) int {
	switch tag.Kind {
	case evArrival, evCreationDone, evDeparture, evMigCutover:
		return sh.part.VMCell(tag.Arg)
	case evBootDone, evShutdownDone, evFailure, evRepaired:
		return sh.part.PMCell(int(tag.Arg))
	default: // evControlTick and anything untagged-adjacent
		return 0
	}
}

func (sh *shardedEngine) Now() float64 { return sh.now }

func (sh *shardedEngine) Dispatched() uint64 { return sh.dispatched }

func (sh *shardedEngine) Pending() int {
	n := 0
	for _, e := range sh.cells {
		n += e.Pending()
	}
	return n
}

// ScheduleTag routes the event to its cell's queue. The past-check runs
// against the GLOBAL clock: a cell's local clock lags it, so the
// per-cell engine alone could not reject an event that is in the global
// past but that cell's local future.
func (sh *shardedEngine) ScheduleTag(at float64, tag Tag, fire func()) Event {
	if at < sh.now {
		panic(fmt.Sprintf("sim: scheduling event at %g before now %g", at, sh.now))
	}
	return sh.cells[sh.route(tag)].ScheduleTag(at, tag, fire)
}

// Step fires the globally next event: peek every cell, advance the
// shared clock to the minimum (at, seq), and dispatch it inside that
// cell with the observer's cell scope set (trace events emitted by the
// handler carry the cell ID; scoped counters double-book per cell).
func (sh *shardedEngine) Step() bool {
	at, _, ci, ok := sh.orch.Peek()
	if !ok {
		return false
	}
	sh.now = at
	sh.dispatched++
	if sh.obs != nil {
		sh.obs.EnterCell(ci)
	}
	stepped := sh.cells[ci].Step()
	if sh.obs != nil {
		sh.obs.LeaveCell()
	}
	if !stepped {
		panic(fmt.Sprintf("sim: cell %d peeked an event but had none to fire", ci))
	}
	return true
}

// VerifyQueue runs every cell's structural check, then the cross-cell
// invariants: each resident event routes to the cell holding it, no
// sequence number appears twice, none exceeds the shared counter, and
// nothing is queued before the global clock. O(pending); used by the
// auditor's per-event queue check like the monolith's VerifyQueue.
func (sh *shardedEngine) VerifyQueue() error {
	if sh.verifySeen == nil {
		sh.verifySeen = make(map[uint64]struct{})
	}
	seen := sh.verifySeen
	clear(seen)
	for ci, e := range sh.cells {
		if err := e.VerifyQueue(); err != nil {
			return fmt.Errorf("sim: cell %d: %w", ci, err)
		}
		for i := range e.buckets {
			for rec := e.buckets[i].head; rec != nil; rec = rec.next {
				if rec.tag.Kind != 0 {
					if want := sh.route(rec.tag); want != ci {
						return fmt.Errorf("sim: event (kind %d, arg %d) resident in cell %d, routes to %d",
							rec.tag.Kind, rec.tag.Arg, ci, want)
					}
				}
				if rec.seq > sh.seqCtr {
					return fmt.Errorf("sim: cell %d holds seq %d beyond shared counter %d", ci, rec.seq, sh.seqCtr)
				}
				if _, dup := seen[rec.seq]; dup {
					return fmt.Errorf("sim: seq %d is live in two cells", rec.seq)
				}
				seen[rec.seq] = struct{}{}
				if rec.at < sh.now {
					return fmt.Errorf("sim: cell %d holds event at t=%g before global now %g", ci, rec.at, sh.now)
				}
			}
		}
	}
	return nil
}

// SnapshotState merges every cell's pending events into one (At, Seq)-
// sorted list under the global clock and counters. The result is
// cell-agnostic — identical to what the monolith would snapshot at the
// same event boundary — which is what lets a C=8 checkpoint restore
// into any other cell count: RestoreState re-derives each event's cell
// from its tag under the TARGET partition.
func (sh *shardedEngine) SnapshotState() (EngineState, error) {
	var evs []QueuedEvent
	for ci, e := range sh.cells {
		ce, err := e.SnapshotEvents()
		if err != nil {
			return EngineState{}, fmt.Errorf("sim: cell %d: %w", ci, err)
		}
		evs = append(evs, ce...)
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Seq < evs[j].Seq
	})
	return EngineState{Now: sh.now, Seq: sh.seqCtr, Dispatched: sh.dispatched, Events: evs}, nil
}

// cellDispatched returns each cell's dispatch count (the snapshot's
// per-cell section).
func (sh *shardedEngine) cellDispatched() []uint64 {
	out := make([]uint64, len(sh.cells))
	for i, e := range sh.cells {
		out[i] = e.Dispatched()
	}
	return out
}

// setRestoreDispatched stages per-cell dispatch counts for the next
// RestoreState. They only apply when the snapshot's cell count matches
// this engine's — the documented re-shard path (any other C, including
// a monolith snapshot) restores per-cell attribution from zero while
// the global count is preserved.
func (sh *shardedEngine) setRestoreDispatched(snapshotCells int, disp []uint64) {
	if snapshotCells == sh.part.Cells && len(disp) == sh.part.Cells {
		sh.restoreDisp = disp
	} else {
		sh.restoreDisp = nil
	}
}

// RestoreState loads a (cell-agnostic) engine snapshot: events are
// partitioned by routing tag under THIS engine's cell count, re-armed
// with their original sequence numbers, and the returned handles are
// index-aligned with st.Events exactly like the monolith's RestoreState.
func (sh *shardedEngine) RestoreState(st EngineState, rebuild func(QueuedEvent) func()) ([]Event, error) {
	if sh.seqCtr != 0 || sh.dispatched != 0 || sh.Pending() != 0 {
		return nil, fmt.Errorf("sim: RestoreState on a used sharded engine (seq=%d, pending=%d)", sh.seqCtr, sh.Pending())
	}
	perEv := make([][]QueuedEvent, len(sh.cells))
	perIdx := make([][]int, len(sh.cells))
	for i, ev := range st.Events {
		if ev.Tag.Kind == 0 {
			return nil, fmt.Errorf("sim: event %d has zero tag kind", i)
		}
		c := sh.route(ev.Tag)
		perEv[c] = append(perEv[c], ev)
		perIdx[c] = append(perIdx[c], i)
	}
	handles := make([]Event, len(st.Events))
	for c, e := range sh.cells {
		var disp uint64
		if sh.restoreDisp != nil {
			disp = sh.restoreDisp[c]
		}
		hs, err := e.RestoreState(EngineState{Now: st.Now, Seq: st.Seq, Dispatched: disp, Events: perEv[c]}, rebuild)
		if err != nil {
			return nil, fmt.Errorf("sim: cell %d: %w", c, err)
		}
		for j, h := range hs {
			handles[perIdx[c][j]] = h
		}
	}
	sh.now = st.Now
	sh.seqCtr = st.Seq
	sh.dispatched = st.Dispatched
	sh.restoreDisp = nil
	return handles, nil
}

// cellPartition exposes the partition when the run is sharded, for the
// simulation layer's per-cell gauges and cross-cell migration counters.
func (s *simulator) cellPartition() (cell.Partition, bool) {
	if sh, ok := s.eng.(*shardedEngine); ok {
		return sh.part, true
	}
	return cell.Partition{}, false
}

// cellGauges publishes per-cell active-PM gauges at control ticks.
// Registry-only diagnostics: gauges are outside the determinism
// contract, so the monolith's trace is unaffected.
func (s *simulator) cellGauges() {
	part, ok := s.cellPartition()
	if !ok || s.cfg.Obs == nil {
		return
	}
	counts := make([]int, part.Cells)
	for _, pm := range s.dc.PMs() {
		if pm.State == cluster.PMOn || pm.State == cluster.PMBooting {
			counts[part.PMCell(int(pm.ID))]++
		}
	}
	for c, n := range counts {
		s.cfg.Obs.SetGauge(fmt.Sprintf("sim.active_pms@cell%d", c), float64(n))
	}
}

// countCellMoves splits executed migrations into intra- and cross-cell
// counters — the orchestrator-level view of how much consolidation
// traffic crosses cell boundaries. Counters only; trace untouched.
func (s *simulator) countCellMoves(moves []core.Move) {
	part, ok := s.cellPartition()
	if !ok || s.cfg.Obs == nil {
		return
	}
	var intra, cross int64
	for _, mv := range moves {
		if part.PMCell(int(mv.From)) == part.PMCell(int(mv.To)) {
			intra++
		} else {
			cross++
		}
	}
	if intra > 0 {
		s.cfg.Obs.Add("sim.migrations_intra_cell", intra)
	}
	if cross > 0 {
		s.cfg.Obs.Add("sim.migrations_cross_cell", cross)
	}
}
