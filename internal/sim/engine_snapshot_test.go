package sim

import (
	"reflect"
	"testing"

	"repro/internal/stats"
)

// fired records a dispatch log entry as (time, tag) so two engines'
// dispatch orders can be compared exactly.
type fired struct {
	at  float64
	tag Tag
}

// TestEngineSnapshotRestoreDispatchOrder is the core engine-level resume
// property: snapshot mid-run, restore into a fresh engine, and the
// remaining dispatch sequence — including same-time FIFO ties and events
// scheduled by callbacks after the restore — must be identical.
func TestEngineSnapshotRestoreDispatchOrder(t *testing.T) {
	rng := stats.NewRand(981)
	build := func() (*Engine, *[]fired) {
		e := &Engine{}
		log := &[]fired{}
		var schedule func(at float64, tag Tag)
		schedule = func(at float64, tag Tag) {
			e.ScheduleTag(at, tag, func() {
				*log = append(*log, fired{e.Now(), tag})
				// Chain: some events schedule follow-ups, exercising
				// post-restore scheduling with resumed seq numbering.
				if tag.Kind == 2 && tag.Arg < 40 {
					schedule(e.Now()+1.5, Tag{Kind: 2, Arg: tag.Arg + 100})
				}
			})
		}
		for i := 0; i < 300; i++ {
			at := rng.Float64() * 100
			if i%7 == 0 {
				at = float64(i % 5) // force exact-tie timestamps
			}
			schedule(at, Tag{Kind: uint8(1 + i%3), Arg: int64(i)})
		}
		return e, log
	}

	// Reference: run to completion uninterrupted.
	rng = stats.NewRand(981)
	ref, refLog := build()
	ref.Run()

	// Interrupted: step partway, snapshot, restore, finish.
	rng = stats.NewRand(981)
	e, log := build()
	for i := 0; i < 120; i++ {
		if !e.Step() {
			t.Fatal("queue drained early")
		}
	}
	st, err := e.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}

	e2 := &Engine{}
	log2 := &[]fired{}
	*log2 = append(*log2, *log...)
	var schedule2 func(at float64, tag Tag)
	var fire2 func(tag Tag) func()
	fire2 = func(tag Tag) func() {
		return func() {
			*log2 = append(*log2, fired{e2.Now(), tag})
			if tag.Kind == 2 && tag.Arg < 40 {
				schedule2(e2.Now()+1.5, Tag{Kind: 2, Arg: tag.Arg + 100})
			}
		}
	}
	schedule2 = func(at float64, tag Tag) { e2.ScheduleTag(at, tag, fire2(tag)) }
	handles, err := e2.RestoreState(st, func(ev QueuedEvent) func() { return fire2(ev.Tag) })
	if err != nil {
		t.Fatal(err)
	}
	if len(handles) != len(st.Events) {
		t.Fatalf("got %d handles for %d events", len(handles), len(st.Events))
	}
	for i, h := range handles {
		if !h.Live() || h.Time() != st.Events[i].At {
			t.Fatalf("handle %d not live at snapshot time", i)
		}
	}
	if e2.Now() != e.Now() || e2.Dispatched() != e.Dispatched() || e2.Pending() != e.Pending() {
		t.Fatalf("restored clock/counters differ: now %g/%g dispatched %d/%d pending %d/%d",
			e2.Now(), e.Now(), e2.Dispatched(), e.Dispatched(), e2.Pending(), e.Pending())
	}
	e2.Run()

	if !reflect.DeepEqual(*refLog, *log2) {
		if len(*refLog) != len(*log2) {
			t.Fatalf("dispatch counts differ: %d vs %d", len(*refLog), len(*log2))
		}
		for i := range *refLog {
			if (*refLog)[i] != (*log2)[i] {
				t.Fatalf("dispatch %d differs: %+v vs %+v", i, (*refLog)[i], (*log2)[i])
			}
		}
	}
	if e2.Dispatched() != ref.Dispatched() {
		t.Fatalf("dispatched %d != reference %d", e2.Dispatched(), ref.Dispatched())
	}
}

// TestSnapshotEventsRejectsUntagged: a plain Schedule event has no
// rebuild recipe, so the snapshot must fail loudly rather than silently
// drop it.
func TestSnapshotEventsRejectsUntagged(t *testing.T) {
	e := &Engine{}
	e.Schedule(5, func() {})
	if _, err := e.SnapshotEvents(); err == nil {
		t.Fatal("snapshot of an untagged event succeeded")
	}
}

// TestRestoreStateValidation exercises the rejection paths: used engine,
// out-of-range and duplicate seqs, pre-clock events, zero tags.
func TestRestoreStateValidation(t *testing.T) {
	ok := QueuedEvent{At: 10, Seq: 3, Tag: Tag{Kind: 1}}
	cases := []struct {
		name string
		st   EngineState
	}{
		{"seq zero", EngineState{Now: 1, Seq: 5, Events: []QueuedEvent{{At: 10, Seq: 0, Tag: Tag{Kind: 1}}}}},
		{"seq beyond counter", EngineState{Now: 1, Seq: 2, Events: []QueuedEvent{ok}}},
		{"duplicate seq", EngineState{Now: 1, Seq: 5, Events: []QueuedEvent{ok, ok}}},
		{"event before clock", EngineState{Now: 50, Seq: 5, Events: []QueuedEvent{ok}}},
		{"zero tag", EngineState{Now: 1, Seq: 5, Events: []QueuedEvent{{At: 10, Seq: 3}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := &Engine{}
			if _, err := e.RestoreState(tc.st, func(QueuedEvent) func() { return func() {} }); err == nil {
				t.Fatal("invalid state accepted")
			}
		})
	}

	t.Run("used engine", func(t *testing.T) {
		e := &Engine{}
		e.Schedule(1, func() {})
		if _, err := e.RestoreState(EngineState{}, nil); err == nil {
			t.Fatal("restore into a used engine accepted")
		}
	})
}

// TestRestoredEventCancel: handles returned by RestoreState must be
// cancellable exactly like freshly scheduled ones — the simulation layer
// re-arms its lifeEvent/failure maps with them.
func TestRestoredEventCancel(t *testing.T) {
	e := &Engine{}
	e.ScheduleTag(5, Tag{Kind: 1, Arg: 1}, func() {})
	e.ScheduleTag(7, Tag{Kind: 1, Arg: 2}, func() {})
	st, err := e.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	e2 := &Engine{}
	ran := 0
	handles, err := e2.RestoreState(st, func(QueuedEvent) func() { return func() { ran++ } })
	if err != nil {
		t.Fatal(err)
	}
	if !handles[0].Cancel() {
		t.Fatal("restored handle did not cancel")
	}
	if handles[0].Cancel() {
		t.Fatal("double cancel reported success")
	}
	e2.Run()
	if ran != 1 {
		t.Fatalf("ran %d callbacks, want 1 (one cancelled)", ran)
	}
	if err := e2.VerifyQueue(); err != nil {
		t.Fatal(err)
	}
}
