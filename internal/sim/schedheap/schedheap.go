// Package schedheap freezes the binary-heap event scheduler the engine
// used before the calendar-queue rewrite. Like internal/core/oracle for
// the probability kernel, it is a behavioural reference, not production
// code: the scheduler fuzz/property tests dispatch identical operation
// sequences through this heap and the live timing wheel and require
// bit-identical event order, and cmd/benchreport measures the wheel's
// events/sec against it for BENCH_engine.json.
//
// The implementation is the PR 2 engine verbatim (event heap ordered by
// (time, seq) with lazy reaping of cancelled residents), minus the
// simulation-facing conveniences the comparison does not need. Do not
// "improve" it — its value is that it stays exactly what the simulator
// used to run on.
package schedheap

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback handle, cancellable until it fires.
type Event struct {
	time     float64
	seq      uint64
	fire     func()
	canceled bool
	index    int     // heap index, -1 once removed
	owner    *Engine // engine whose heap holds the event
}

// Time returns the simulation time the event is scheduled for.
func (e *Event) Time() float64 { return e.time }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op. The heap slot is reclaimed lazily.
func (e *Event) Cancel() {
	if e.canceled {
		return
	}
	e.canceled = true
	if e.owner != nil && e.index >= 0 {
		e.owner.canceledPending++
		e.owner.maybeReap()
	}
}

// Canceled reports whether the event was cancelled.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the frozen heap-based event loop. The zero value is ready to
// use at time 0.
type Engine struct {
	now        float64
	seq        uint64
	events     eventHeap
	dispatched uint64

	// canceledPending counts cancelled events still resident in the heap.
	canceledPending int
}

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Dispatched returns the number of events fired so far.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// Pending returns the number of live (non-cancelled) events still queued.
func (e *Engine) Pending() int { return len(e.events) - e.canceledPending }

// Schedule queues fire to run at absolute time at.
func (e *Engine) Schedule(at float64, fire func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("schedheap: scheduling event at %g before now %g", at, e.now))
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		panic(fmt.Sprintf("schedheap: scheduling event at invalid time %g", at))
	}
	if fire == nil {
		panic("schedheap: scheduling nil callback")
	}
	ev := &Event{time: at, seq: e.seq, fire: fire, owner: e}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// ScheduleAfter queues fire to run d seconds from now.
func (e *Engine) ScheduleAfter(d float64, fire func()) *Event {
	return e.Schedule(e.now+d, fire)
}

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			e.canceledPending--
			continue
		}
		e.now = ev.time
		e.dispatched++
		ev.fire()
		return true
	}
	return false
}

// Run dispatches events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil dispatches events with time <= t, then advances the clock to t.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("schedheap: RunUntil(%g) before now %g", t, e.now))
	}
	for len(e.events) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.time > t {
			break
		}
		e.Step()
	}
	e.now = t
}

// peek returns the earliest non-cancelled event without removing it,
// reaping cancelled heads along the way.
func (e *Engine) peek() *Event {
	for len(e.events) > 0 {
		head := e.events[0]
		if !head.canceled {
			return head
		}
		heap.Pop(&e.events)
		e.canceledPending--
	}
	return nil
}

// reapMinCancelled is the lazy-reap floor.
const reapMinCancelled = 64

// maybeReap compacts the heap when cancelled events make up at least half
// of it (and clear the floor).
func (e *Engine) maybeReap() {
	if e.canceledPending < reapMinCancelled || 2*e.canceledPending < len(e.events) {
		return
	}
	live := e.events[:0]
	for _, ev := range e.events {
		if ev.canceled {
			ev.index = -1
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.events); i++ {
		e.events[i] = nil // release the dead tail for GC
	}
	e.events = live
	for i, ev := range e.events {
		ev.index = i
	}
	heap.Init(&e.events)
	e.canceledPending = 0
}
