package sim

import "testing"

func TestPendingCountsLiveEventsOnly(t *testing.T) {
	var e Engine
	evs := make([]*Event, 10)
	for i := range evs {
		evs[i] = e.Schedule(float64(i+1), func() {})
	}
	if got := e.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	for i := 0; i < 7; i++ {
		evs[i].Cancel()
	}
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending after 7 cancels = %d, want 3", got)
	}
	// Double-cancel must not double-count.
	evs[0].Cancel()
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending after double-cancel = %d, want 3", got)
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != 3 {
		t.Fatalf("fired %d events, want 3", fired)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after drain = %d, want 0", got)
	}
}

func TestCancelledEventsAreReaped(t *testing.T) {
	var e Engine
	// One far-future live event, then a pile of cancelled ones: the old
	// implementation kept every cancelled timer resident until the heap
	// drained past it.
	e.Schedule(1e9, func() {})
	var evs []*Event
	for i := 0; i < 500; i++ {
		evs = append(evs, e.Schedule(1e6+float64(i), func() {}))
	}
	for _, ev := range evs {
		ev.Cancel()
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending = %d, want 1", got)
	}
	if n := len(e.events); n >= 500 {
		t.Fatalf("heap still holds %d events after cancelling 500; reap never ran", n)
	}
	if e.canceledPending < 0 {
		t.Fatalf("canceledPending = %d went negative", e.canceledPending)
	}
	// The surviving heap must still dispatch correctly.
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != 1 {
		t.Fatalf("fired %d, want 1", fired)
	}
	if e.Now() != 1e9 {
		t.Fatalf("Now = %g, want 1e9", e.Now())
	}
}

func TestReapPreservesDispatchOrder(t *testing.T) {
	var e Engine
	var order []int
	var cancelled []*Event
	// Interleave live and to-be-cancelled events so the reap's heap
	// rebuild has real work to do.
	for i := 0; i < 300; i++ {
		i := i
		if i%3 == 0 {
			e.Schedule(float64(1000-i), func() { order = append(order, 1000-i) })
		} else {
			cancelled = append(cancelled, e.Schedule(float64(2000+i), func() { t.Error("cancelled event fired") }))
		}
	}
	for _, ev := range cancelled {
		ev.Cancel()
	}
	e.Run()
	if len(order) != 100 {
		t.Fatalf("fired %d live events, want 100", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("out-of-order dispatch after reap: %d before %d", order[i-1], order[i])
		}
	}
}

func TestReapKeepsRunUntilSemantics(t *testing.T) {
	var e Engine
	fired := 0
	for i := 0; i < 200; i++ {
		ev := e.Schedule(float64(i), func() { t.Error("cancelled event fired") })
		ev.Cancel()
	}
	e.Schedule(500, func() { fired++ })
	e.Schedule(1500, func() { fired++ })
	e.RunUntil(1000)
	if fired != 1 {
		t.Fatalf("fired %d events by t=1000, want 1", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if fired != 2 {
		t.Fatalf("fired %d events total, want 2", fired)
	}
}
