package sim

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/audit"
	"repro/internal/cell"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/spare"
	"repro/internal/stats"
	"repro/internal/vector"
	"repro/internal/workload"
)

// Config describes one simulation run: a data center, a placement scheme,
// a workload, and the control knobs of Sections III-IV.
type Config struct {
	// DC is the data center; all PMs should start powered off (the
	// simulator boots on demand). Required.
	DC *cluster.Datacenter

	// Placer is the placement scheme under test. Required.
	Placer policy.Placer

	// Requests is the workload, sorted by submit time. Required.
	Requests []workload.Request

	// ControlPeriod is T, the spare-server control period in seconds
	// (default 3600).
	ControlPeriod float64

	// Spare enables the spare-server controller (Section IV). Nil runs
	// without spares — the configuration the static baselines use.
	Spare *spare.Config

	// Failures configures PM failure injection; the zero value disables
	// it.
	Failures failure.Config

	// MeterBin is the energy-accounting bin width (default 3600 s,
	// matching the paper's hourly figures).
	MeterBin float64

	// TimedMigrations switches live migrations from the paper's
	// instantaneous model (the T_mig overhead enters only through the
	// p_vir probability penalty) to a pre-copy model: the moved VM is
	// in the Migrating state for the target's T_mig, its resources stay
	// committed on the source until cutover (double occupancy), and it
	// cannot be migrated again until the transfer completes.
	TimedMigrations bool

	// WarmStart powers on this many PMs (in boot-preference order) at
	// time zero, skipping the cold-start transient. Zero preserves the
	// paper's cold start.
	WarmStart int

	// EventLog, when non-nil, receives a one-line record of every
	// simulation event (arrivals, placements, migrations, boots,
	// failures) — the debugging trace for simulator development.
	EventLog io.Writer

	// Obs, when non-nil, is the observability sink: the run's metrics
	// (counters, gauges, wait histogram, phase timings) land in Obs.Reg,
	// and — when Obs.Trace is set — every simulation event is emitted as
	// a structured JSONL record (internal/obs). The observer is threaded
	// into the placement kernel (via the core.Context) and the spare
	// controller, so one sink sees the whole run. Each run needs its own
	// Observer; sharing one across concurrent runs keeps the metrics
	// race-free but sums them into a single pool.
	Obs *obs.Observer

	// Cells partitions the fleet into this many cells, each with its own
	// calendar queue, advanced in global (at, seq) order by the
	// shared-clock orchestrator (internal/cell; DESIGN.md §14). 0 or 1
	// runs the monolithic engine — the exact single-cell code path. Any
	// C produces bit-identical results and canonical traces: sharding
	// changes how the event queue is stored, never what fires when.
	Cells int

	// CheckInvariants validates the full datacenter state after every
	// event; slow, meant for tests. Predates the audit subsystem and
	// kept independent of it: audit.Off with CheckInvariants still
	// works.
	CheckInvariants bool

	// KernelWorkers bounds the goroutines the placement kernels fan out
	// on inside a run (core.MatrixOptions.Workers): matrix builds, the
	// sparse candidate sync, and consolidation argmax scans. Zero keeps
	// the placer's own setting (which itself defaults to auto-sizing
	// against the process-wide budget); one forces the strictly serial
	// path; higher values are honored verbatim. Results are bit-identical
	// at every setting (DESIGN.md §15). Only the dynamic scheme evaluates
	// matrices, so the knob is a no-op for the static baselines.
	KernelWorkers int

	// Audit selects the invariant auditor's granularity
	// (internal/audit): Off disables it, Period runs every check at
	// control-period boundaries, Event additionally runs the cheap
	// checks after every event and turns on the matrix self-audit
	// (every consolidation Apply verified against a cold rebuild) when
	// the placer is *policy.Dynamic. The first violation aborts the run
	// with a descriptive error.
	Audit audit.Mode
}

func (c *Config) setDefaults() error {
	if c.DC == nil {
		return fmt.Errorf("sim: config needs a datacenter")
	}
	if c.Placer == nil {
		return fmt.Errorf("sim: config needs a placer")
	}
	if c.ControlPeriod == 0 {
		c.ControlPeriod = 3600
	}
	if c.ControlPeriod < 0 {
		return fmt.Errorf("sim: negative control period")
	}
	if c.MeterBin == 0 {
		c.MeterBin = 3600
	}
	if c.MeterBin < 0 {
		return fmt.Errorf("sim: negative meter bin")
	}
	if c.WarmStart < 0 || c.WarmStart > c.DC.Size() {
		return fmt.Errorf("sim: warm start %d outside fleet size %d", c.WarmStart, c.DC.Size())
	}
	if c.Cells < 0 {
		return fmt.Errorf("sim: negative cell count %d", c.Cells)
	}
	if c.KernelWorkers < 0 {
		return fmt.Errorf("sim: negative kernel worker count %d", c.KernelWorkers)
	}
	if c.Cells > 1 {
		if _, err := cell.NewPartition(c.Cells, c.DC.Size()); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
	}
	if err := c.Failures.Validate(); err != nil {
		return err
	}
	if c.Spare != nil {
		if err := c.Spare.Validate(); err != nil {
			return err
		}
	}
	for i := 1; i < len(c.Requests); i++ {
		if c.Requests[i].Submit < c.Requests[i-1].Submit {
			return fmt.Errorf("sim: requests not sorted by submit time (index %d)", i)
		}
	}
	return nil
}

// Result is the outcome of one run.
type Result struct {
	// Scheme is the placer's name.
	Scheme string

	// ActivePMs samples the number of on/booting PMs at each control
	// period boundary (Figure 3's hourly series).
	ActivePMs *metrics.Series

	// MeanUtilization samples the mean joint utilization of non-idle
	// PMs at each control period boundary; consolidation quality is
	// visible here directly (higher is tighter packing).
	MeanUtilization *metrics.Series

	// EnergyKWh holds per-bin energy in kWh (Figure 4's hourly power
	// series; kWh per hour is numerically the mean kW).
	EnergyKWh *metrics.Series

	// Summary aggregates the run.
	Summary metrics.Summary

	// Moves lists every migration executed (order of execution).
	Moves []core.Move

	// Failures is the number of PM failures injected.
	Failures int

	// SparePlans records the spare-controller decisions per period
	// (empty without a controller).
	SparePlans []spare.Plan

	// EnergyByClassKWh splits total energy by PM class name, for the
	// heterogeneous-fleet analyses.
	EnergyByClassKWh map[string]float64

	// PMEnergyKWh is each PM's total energy over the run, for
	// per-region billing and placement analyses.
	PMEnergyKWh map[cluster.PMID]float64

	// AuditChecks counts the invariant-check executions performed when
	// auditing was enabled (0 with Audit == audit.Off); a successful
	// audited run ran this many checks with zero violations.
	AuditChecks int
}

// Event kinds for calendar-queue snapshot tags (Tag.Kind). Every event
// the simulation schedules carries one of these plus the entity ID it
// concerns, which is all the restore path needs to rebuild the event's
// callback over the reconstructed state. Kind 0 stays reserved for
// untagged events (which a checkpoint rejects).
const (
	evArrival      uint8 = iota + 1 // Arg: VM ID
	evControlTick                   // Arg: unused
	evCreationDone                  // Arg: VM ID
	evDeparture                     // Arg: VM ID
	evBootDone                      // Arg: PM ID
	evShutdownDone                  // Arg: PM ID
	evFailure                       // Arg: PM ID
	evRepaired                      // Arg: PM ID
	evMigCutover                    // Arg: VM ID
)

// Run executes the simulation to completion (all requests finished) and
// returns the collected metrics.
func Run(cfg Config) (*Result, error) {
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for {
		ok, err := m.Step()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
	}
	return m.Finish()
}

// Sim is a stepwise simulation run. New builds the initial state and
// schedules the workload; Step dispatches one event and runs the
// configured checks; Finish validates the drained state and assembles the
// Result. Run composes the three. The seams exist for the checkpoint
// layer: Save may be called between any two Steps, and Restore re-enters
// the same loop mid-run with bit-identical future behavior.
type Sim struct {
	s *simulator
}

// New builds a run from cfg: warm-start power state, the control-tick
// chain, and the full workload schedule.
func New(cfg Config) (*Sim, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	s := &simulator{cfg: &cfg, dc: cfg.DC}
	if d, ok := policy.DynamicOf(cfg.Placer); ok && cfg.KernelWorkers != 0 {
		d.Opts.Workers = cfg.KernelWorkers
	}
	s.eng = newScheduler(cfg.Cells, cfg.DC.Size(), cfg.Obs)
	s.pctx = core.NewContext(s.dc)
	s.start()
	return &Sim{s: s}, nil
}

// Now returns the current simulation time in seconds.
func (m *Sim) Now() float64 { return m.s.eng.Now() }

// Dispatched returns the number of events fired so far.
func (m *Sim) Dispatched() uint64 { return m.s.eng.Dispatched() }

// Pending returns the number of events still queued.
func (m *Sim) Pending() int { return m.s.eng.Pending() }

// Step dispatches the next event and runs the configured invariant
// checks. It returns false when the event queue is empty (the run is
// ready for Finish), and a non-nil error on the first check violation.
func (m *Sim) Step() (bool, error) { return m.s.stepOnce() }

// Finish validates the drained state and assembles the Result. Call it
// exactly once, after Step has returned false.
func (m *Sim) Finish() (*Result, error) { return m.s.finish() }

// simulator holds one run's mutable state.
type simulator struct {
	cfg *Config
	eng scheduler
	dc  *cluster.Datacenter

	meter *power.Meter
	ctrl  *spare.Controller
	inj   *failure.Injector

	// queue holds requests waiting for capacity, FIFO.
	queue []*cluster.VM

	// reqOf maps VM IDs back to their originating requests.
	reqOf map[cluster.VMID]workload.Request

	// bootReadyAt records when a booting PM becomes usable, so VMs
	// placed onto booting machines start creation after boot completes.
	bootReadyAt map[cluster.PMID]float64

	// failEvent tracks the pending failure event per powered-on PM.
	failEvent map[cluster.PMID]Event

	// lifeEvent tracks each placed VM's next lifecycle event (creation
	// completion or departure) so a PM failure can cancel it before
	// re-queueing the VM.
	lifeEvent map[cluster.VMID]Event

	// holds tracks in-flight timed migrations' source-side reservations.
	holds map[cluster.VMID]*migrationHold

	// pctx is the evaluation context reused across events so the
	// per-class constant cache survives between placements and
	// consolidation passes instead of being rebuilt each time.
	pctx *core.Context

	spareTarget int

	// aud is the invariant auditor (nil when cfg.Audit == audit.Off);
	// arrived feeds its conservation ledger and tickRan marks that a
	// control tick fired so the per-period checks run after it.
	aud     *audit.Auditor
	arrived int
	tickRan bool

	// tracing gates structured event emission so disabled runs never
	// assemble event payloads; the counters and spans below are cached
	// registry pointers (nil-safe no-ops without an observer).
	tracing    bool
	phDispatch *obs.Span
	waitHist   *obs.Histogram
	cArrivals  *obs.Counter
	cPlace     *obs.Counter
	cQueued    *obs.Counter
	cDeparts   *obs.Counter
	cMigrates  *obs.Counter
	cBoots     *obs.Counter
	cShutdowns *obs.Counter
	cFailures  *obs.Counter

	res         *Result
	waits       []float64
	queuedCount int
	boots       int
	horizon     float64

	// traceSeq0 is the trace logical clock carried in from a restored
	// checkpoint. It exists so a restored run WITHOUT an observer (the
	// snapshot auditor's round-trip clone) still re-serializes the same
	// TraceSeq it was restored with, keeping save→load→save byte-exact.
	traceSeq0 uint64

	// decisionSeq0 is the decision-log logical clock carried in from a
	// restored checkpoint, mirroring traceSeq0 for the decision stream:
	// records emitted after a resume continue the original numbering, so
	// concatenated decision logs replay seamlessly.
	decisionSeq0 uint64
}

func (s *simulator) ctx() *core.Context {
	return s.pctx.At(s.eng.Now())
}

// setupObs caches the run's metric handles and threads the observer into
// the placement kernel and the spare controller. Everything stays nil
// (inert) without a configured observer.
func (s *simulator) setupObs() {
	o := s.cfg.Obs
	if o == nil {
		return
	}
	s.tracing = o.Tracing()
	s.pctx.Obs = o
	if s.ctrl != nil {
		s.ctrl.Obs = o
	}
	s.phDispatch = o.Phase("event_dispatch")
	s.waitHist = o.Reg.Histogram("sim.wait_seconds", waitBounds)
	s.cArrivals = o.Counter("sim.arrivals")
	s.cPlace = o.Counter("sim.placements")
	s.cQueued = o.Counter("sim.queued")
	s.cDeparts = o.Counter("sim.departures")
	s.cMigrates = o.Counter("sim.migrations")
	s.cBoots = o.Counter("sim.boots")
	s.cShutdowns = o.Counter("sim.shutdowns")
	s.cFailures = o.Counter("sim.failures")
}

// emit writes one structured trace event at the current simulation time.
// Callers guard with s.tracing so disabled runs skip payload assembly.
func (s *simulator) emit(event string, fields ...obs.KV) {
	s.cfg.Obs.Emit(s.eng.Now(), event, fields...)
}

// logf appends one record to the event log when tracing is enabled.
func (s *simulator) logf(format string, args ...any) {
	if s.cfg.EventLog == nil {
		return
	}
	fmt.Fprintf(s.cfg.EventLog, "%10.1f  ", s.eng.Now())
	fmt.Fprintf(s.cfg.EventLog, format, args...)
	fmt.Fprintln(s.cfg.EventLog)
}

// initRun builds the run-lifetime components shared by a fresh start and
// a checkpoint restore: the meter, the bookkeeping maps, the empty
// Result, the spare controller, and the failure injector.
func (s *simulator) initRun() {
	s.meter = power.NewMeter(s.dc, s.cfg.MeterBin)
	s.reqOf = make(map[cluster.VMID]workload.Request, len(s.cfg.Requests))
	s.bootReadyAt = make(map[cluster.PMID]float64)
	s.failEvent = make(map[cluster.PMID]Event)
	s.lifeEvent = make(map[cluster.VMID]Event)
	s.holds = make(map[cluster.VMID]*migrationHold)
	s.res = &Result{
		Scheme:          s.cfg.Placer.Name(),
		ActivePMs:       metrics.NewSeries(s.cfg.Placer.Name(), s.cfg.ControlPeriod),
		MeanUtilization: metrics.NewSeries(s.cfg.Placer.Name(), s.cfg.ControlPeriod),
	}
	if s.cfg.Spare != nil {
		s.ctrl = spare.NewController(*s.cfg.Spare)
	}
	if s.cfg.Failures.Enabled() {
		s.inj = failure.NewInjector(s.cfg.Failures)
	}
	for i, req := range s.cfg.Requests {
		s.reqOf[cluster.VMID(i+1)] = req
		if end := req.Submit + req.RunTime; end > s.horizon {
			s.horizon = end
		}
	}
}

func (s *simulator) start() {
	s.initRun()
	s.setupObs()
	s.setupAudit()
	if s.tracing {
		s.emit("run_start",
			obs.S("scheme", s.cfg.Placer.Name()),
			obs.I("pms", int64(s.dc.Size())),
			obs.I("requests", int64(len(s.cfg.Requests))),
			obs.F("control_period", s.cfg.ControlPeriod),
			obs.B("spare", s.cfg.Spare != nil),
			obs.B("timed_migrations", s.cfg.TimedMigrations))
	}

	for i, pm := range s.bootCandidates() {
		if i >= s.cfg.WarmStart {
			break
		}
		pm.State = cluster.PMOn
		s.armFailure(pm)
	}
	// The warm pool doubles as the initial spare target so the t=0
	// power-management pass does not immediately shut it down; a spare
	// plan (or, without a controller, the first later tick) supersedes
	// it.
	s.spareTarget = s.cfg.WarmStart

	// The control tick is scheduled before the workload so the t=0
	// sample observes the cold-start state before any same-instant
	// arrival (FIFO tie-breaking).
	if len(s.cfg.Requests) > 0 {
		s.scheduleControlTick(0)
	}
	// Schedule the workload.
	for i, req := range s.cfg.Requests {
		id := cluster.VMID(i + 1)
		req := req
		s.eng.ScheduleTag(req.Submit, Tag{Kind: evArrival, Arg: int64(id)},
			func() { s.onArrival(id, req) })
	}
}

// stepOnce is one main-loop iteration: dispatch the next event, then run
// the per-event checks the configuration asks for.
func (s *simulator) stepOnce() (bool, error) {
	stopDispatch := s.phDispatch.Time()
	stepped := s.eng.Step()
	stopDispatch()
	if !stepped {
		return false, nil
	}
	var simErr error
	if s.cfg.CheckInvariants {
		if err := s.dc.CheckInvariants(); err != nil {
			simErr = fmt.Errorf("sim: invariant violation at t=%g: %w", s.eng.Now(), err)
		}
	}
	if simErr == nil && s.aud != nil {
		var auditErr error
		if s.tickRan {
			// A control tick just fired: run the full set,
			// including the per-period oracle differential.
			s.tickRan = false
			auditErr = s.aud.RunPeriod(s.eng.Now())
		} else if s.cfg.Audit == audit.Event {
			auditErr = s.aud.RunEvent(s.eng.Now())
		}
		if auditErr != nil {
			simErr = fmt.Errorf("sim: %w", auditErr)
		}
	}
	if simErr != nil {
		if s.tracing {
			s.emit("audit_violation", obs.S("error", simErr.Error()))
		}
		return true, simErr
	}
	return true, nil
}

func (s *simulator) finish() (*Result, error) {
	if len(s.queue) > 0 {
		return nil, fmt.Errorf("sim: %d requests still queued at drain (no capacity ever became available)", len(s.queue))
	}
	s.meter.Advance(s.eng.Now())
	if s.aud != nil {
		// Final sweep over the drained state.
		if err := s.aud.RunPeriod(s.eng.Now()); err != nil {
			err = fmt.Errorf("sim: %w", err)
			if s.tracing {
				s.emit("audit_violation", obs.S("error", err.Error()))
			}
			return nil, err
		}
		s.res.AuditChecks = s.aud.Checks()
	}
	s.finalizeResult()
	if s.tracing {
		s.emit("run_end",
			obs.I("completed", int64(s.res.Summary.VMsCompleted)),
			obs.I("rejected", int64(s.res.Summary.Rejected)),
			obs.I("migrations", int64(len(s.res.Moves))),
			obs.I("boots", int64(s.boots)),
			obs.I("failures", int64(s.res.Failures)),
			obs.I("dispatched", int64(s.eng.Dispatched())))
	}
	return s.res, nil
}

// setupAudit registers the invariant checks matching the run's
// configuration. In Event mode with the dynamic scheme the matrix
// self-audit is also switched on, so every consolidation Apply verifies
// its incremental trackers against a cold rebuild.
func (s *simulator) setupAudit() {
	if s.cfg.Audit == audit.Off {
		return
	}
	s.aud = &audit.Auditor{}
	s.aud.Register(audit.StateCheck(s.dc))
	s.aud.Register(audit.QueueCheck(s.eng.VerifyQueue))
	s.aud.Register(audit.EnergyCheck(s.meter, s.dc))
	s.aud.Register(audit.ConservationCheck(s.dc, func() (arrived, queued, finished, rejected int) {
		return s.arrived, len(s.queue), s.res.Summary.VMsCompleted, s.res.Summary.Rejected
	}))
	if s.cfg.Spare != nil {
		s.aud.Register(audit.SpareCheck(*s.cfg.Spare, s.dc, func() *spare.Plan {
			if n := len(s.res.SparePlans); n > 0 {
				return &s.res.SparePlans[n-1]
			}
			return nil
		}))
	}
	if d, ok := policy.DynamicOf(s.cfg.Placer); ok {
		s.aud.Register(audit.TrackerCheck(s.pctx, d.FactorSet()))
		if d.Opts.CandidateK > 0 {
			s.aud.Register(audit.SparseCheck(s.pctx, d.FactorSet(), d.Opts.CandidateK))
		}
		if s.cfg.Audit == audit.Event {
			d.Opts.SelfAudit = true
		}
	}
	// The snapshot round-trip (save → restore into a topology clone →
	// re-save → byte-compare + invariants) is period-granularity only:
	// serializing the whole run per event would dominate the run.
	s.aud.Register(s.snapshotCheck())
}

func (s *simulator) scheduleControlTick(at float64) {
	s.eng.ScheduleTag(at, Tag{Kind: evControlTick}, s.onControlTick)
}

// --- event handlers ---

func (s *simulator) onArrival(id cluster.VMID, req workload.Request) {
	now := s.eng.Now()
	s.arrived++
	s.meter.Advance(now)
	if s.ctrl != nil {
		s.ctrl.RecordArrival(now)
	}
	vm := cluster.NewVM(id, vector.New(req.CPUCores, req.MemoryGB), req.EstimatedRunTime, req.RunTime, now)
	s.logf("arrive   VM%-5d demand=%v est=%gs", vm.ID, vm.Demand, vm.EstimatedRuntime)
	s.cArrivals.Inc()
	if s.tracing {
		s.emit("arrival", obs.I("vm", int64(vm.ID)),
			obs.F("cpu", req.CPUCores), obs.F("mem", req.MemoryGB), obs.F("est", req.EstimatedRunTime))
	}
	if !s.tryPlace(vm) {
		s.logf("queue    VM%-5d (no feasible active PM)", vm.ID)
		s.enqueue(vm)
	}
	s.consolidate()
}

// tryPlace asks the placer for a host and, when found, starts VM creation.
func (s *simulator) tryPlace(vm *cluster.VM) bool {
	pm := s.cfg.Placer.Place(s.ctx(), vm)
	if pm == nil {
		return false
	}
	if err := pm.Host(vm); err != nil {
		// The placer returned an infeasible PM — a scheme bug worth
		// surfacing loudly rather than mis-accounting.
		panic(fmt.Sprintf("sim: placer %s chose infeasible PM: %v", s.cfg.Placer.Name(), err))
	}
	vm.State = cluster.VMCreating
	now := s.eng.Now()
	start := now
	if ready, booting := s.bootReadyAt[pm.ID]; booting && ready > now {
		start = ready
	}
	s.recordWait(vm, start)
	s.logf("place    VM%-5d -> PM%d (%s)", vm.ID, pm.ID, pm.Class.Name)
	s.cPlace.Inc()
	if s.tracing {
		s.emit("place", obs.I("vm", int64(vm.ID)), obs.I("pm", int64(pm.ID)), obs.F("ready", start))
	}
	done := start + pm.Class.CreationTime
	s.lifeEvent[vm.ID] = s.eng.ScheduleTag(done, Tag{Kind: evCreationDone, Arg: int64(vm.ID)},
		func() { s.onCreationDone(vm) })
	return true
}

// waitBounds buckets placement-wait histograms; shared by setupObs and
// the cell-scoped observation path (bounds must match per name).
var waitBounds = []float64{1, 10, 60, 300, 1800}

func (s *simulator) recordWait(vm *cluster.VM, placedAt float64) {
	w := placedAt - vm.SubmitTime
	if w < 0 {
		w = 0
	}
	s.waits = append(s.waits, w)
	// Scoped like the counters (PR 8): in multi-cell runs each cell's
	// wait distribution books into "sim.wait_seconds@cellK" alongside
	// the shared base histogram, so per-cell QoS never shares a sink.
	s.cfg.Obs.ObserveScoped("sim.wait_seconds", waitBounds, w)
	if w > 1 { // anything beyond a second of queueing counts against QoS
		s.queuedCount++
	}
}

func (s *simulator) enqueue(vm *cluster.VM) {
	// A request no PM class could ever satisfy would wait forever; count
	// it as rejected instead of deadlocking the run.
	feasibleSomewhere := false
	for _, pm := range s.dc.PMs() {
		if vm.Demand.LE(pm.Class.Capacity) {
			feasibleSomewhere = true
			break
		}
	}
	if !feasibleSomewhere {
		s.res.Summary.Rejected++
		s.cfg.Obs.Add("sim.rejected", 1)
		if s.tracing {
			s.emit("reject", obs.I("vm", int64(vm.ID)))
		}
		return
	}
	s.queue = append(s.queue, vm)
	s.cQueued.Inc()
	if s.tracing {
		s.emit("queue", obs.I("vm", int64(vm.ID)), obs.I("depth", int64(len(s.queue))))
	}
	s.ensureBoots()
}

// ensureBoots powers on enough machines to absorb the queue: the queue
// length divided by the average VMs a PM carries, minus boots already in
// flight.
func (s *simulator) ensureBoots() {
	if len(s.queue) == 0 {
		return
	}
	nAve := s.dc.AverageVMsPerPM(1)
	needed := int(math.Ceil(float64(len(s.queue)) / math.Max(nAve, 1)))
	booting := 0
	for _, pm := range s.dc.PMs() {
		if pm.State == cluster.PMBooting {
			booting++
		}
	}
	for _, pm := range s.bootCandidates() {
		if booting >= needed {
			break
		}
		s.bootPM(pm)
		booting++
	}
}

// bootCandidates returns off PMs in preference order: most power-efficient
// class first (lowest active power per minimal-VM slot), then by ID.
func (s *simulator) bootCandidates() []*cluster.PM {
	off := s.dc.OffPMs()
	rmin := s.dc.RMinShared()
	perVM := func(p *cluster.PM) float64 {
		w := p.Class.MaxMinimalVMs(rmin)
		if w == 0 {
			return math.Inf(1)
		}
		return p.Class.ActivePower / float64(w)
	}
	sort.SliceStable(off, func(i, j int) bool {
		pi, pj := perVM(off[i]), perVM(off[j])
		if pi != pj {
			return pi < pj
		}
		return off[i].ID < off[j].ID
	})
	return off
}

func (s *simulator) bootPM(pm *cluster.PM) {
	if pm.State != cluster.PMOff {
		return
	}
	s.meter.Advance(s.eng.Now())
	pm.State = cluster.PMBooting
	ready := s.eng.Now() + pm.Class.OnOffOverhead
	s.bootReadyAt[pm.ID] = ready
	s.boots++
	s.cBoots.Inc()
	if s.tracing {
		s.emit("boot", obs.I("pm", int64(pm.ID)), obs.S("class", pm.Class.Name), obs.F("ready", ready))
	}
	s.logf("boot     PM%-5d (%s, ready at %.1f)", pm.ID, pm.Class.Name, ready)
	s.eng.ScheduleTag(ready, Tag{Kind: evBootDone, Arg: int64(pm.ID)}, func() { s.onBootDone(pm) })
}

func (s *simulator) onBootDone(pm *cluster.PM) {
	s.meter.Advance(s.eng.Now())
	if pm.State != cluster.PMBooting {
		return // failed mid-boot
	}
	pm.State = cluster.PMOn
	delete(s.bootReadyAt, pm.ID)
	s.armFailure(pm)
	s.drainQueue()
}

func (s *simulator) shutdownPM(pm *cluster.PM) {
	if pm.State != cluster.PMOn || pm.VMCount() > 0 {
		return
	}
	s.meter.Advance(s.eng.Now())
	s.logf("shutdown PM%-5d (%s)", pm.ID, pm.Class.Name)
	s.cShutdowns.Inc()
	if s.tracing {
		s.emit("shutdown", obs.I("pm", int64(pm.ID)))
	}
	pm.State = cluster.PMShuttingDown
	s.disarmFailure(pm)
	s.eng.ScheduleTag(s.eng.Now()+pm.Class.OnOffOverhead, Tag{Kind: evShutdownDone, Arg: int64(pm.ID)},
		func() { s.onShutdownDone(pm) })
}

func (s *simulator) onShutdownDone(pm *cluster.PM) {
	s.meter.Advance(s.eng.Now())
	if pm.State == cluster.PMShuttingDown {
		pm.State = cluster.PMOff
	}
}

func (s *simulator) onCreationDone(vm *cluster.VM) {
	if vm.State != cluster.VMCreating {
		return // re-queued by a failure during creation
	}
	now := s.eng.Now()
	s.meter.Advance(now)
	vm.State = cluster.VMRunning
	vm.StartTime = now
	s.lifeEvent[vm.ID] = s.eng.ScheduleTag(now+vm.ActualRuntime, Tag{Kind: evDeparture, Arg: int64(vm.ID)},
		func() { s.onDeparture(vm) })
}

func (s *simulator) onDeparture(vm *cluster.VM) {
	if vm.State != cluster.VMRunning && vm.State != cluster.VMMigrating {
		return // failure re-queued it; a fresh departure will be scheduled
	}
	now := s.eng.Now()
	s.meter.Advance(now)
	host := s.dc.PM(vm.Host)
	if host == nil {
		panic(fmt.Sprintf("sim: departing VM %d has no host", vm.ID))
	}
	if hold, ok := s.holds[vm.ID]; ok {
		s.releaseHold(vm.ID, hold)
	}
	if err := host.Evict(vm); err != nil {
		panic(fmt.Sprintf("sim: departure eviction failed: %v", err))
	}
	vm.State = cluster.VMFinished
	vm.FinishTime = now
	delete(s.lifeEvent, vm.ID)
	s.res.Summary.VMsCompleted++
	if s.ctrl != nil {
		s.ctrl.RecordCompletion(vm.ActualRuntime)
	}
	s.cDeparts.Inc()
	if s.tracing {
		s.emit("depart", obs.I("vm", int64(vm.ID)), obs.I("pm", int64(host.ID)),
			obs.I("migrations", int64(vm.Migrations)))
	}
	s.logf("depart   VM%-5d from PM%d (%d migrations)", vm.ID, host.ID, vm.Migrations)

	s.drainQueue()
	s.consolidate()
}

// policySpare routes the spare-pool control point through the placer
// when it implements the full Policy surface: the baseline controller's
// plan goes in, the scheme's target comes out (stock schemes pass it
// through unchanged, so legacy Placer-only schemes and existing traces
// are unaffected).
func (s *simulator) policySpare(baseline int) int {
	if p, ok := s.cfg.Placer.(policy.Policy); ok {
		return p.SpareTarget(s.ctx(), baseline)
	}
	return baseline
}

func (s *simulator) onControlTick() {
	now := s.eng.Now()
	s.meter.Advance(now)
	s.res.ActivePMs.Append(float64(s.dc.ActiveCount()))
	s.res.MeanUtilization.Append(s.meanNonIdleUtilization())

	s.cfg.Obs.SetGauge("sim.active_pms", float64(s.dc.ActiveCount()))
	s.cfg.Obs.SetGauge("sim.queue_len", float64(len(s.queue)))
	s.cellGauges()
	if s.tracing {
		s.emit("tick", obs.I("active", int64(s.dc.ActiveCount())),
			obs.F("util", s.meanNonIdleUtilization()), obs.I("queue", int64(len(s.queue))))
	}

	if s.ctrl != nil {
		plan := s.ctrl.PlanSpares(now, s.dc)
		s.res.SparePlans = append(s.res.SparePlans, plan)
		s.spareTarget = s.policySpare(plan.Spares)
		if s.tracing {
			s.emit("spare_plan", obs.I("spares", int64(plan.Spares)),
				obs.I("n_arrival", int64(plan.NArrival)), obs.I("n_departure", int64(plan.NDeparture)),
				obs.F("n_ave", plan.NAve), obs.F("expected_arrivals", plan.ExpectedArrivals))
		}
	} else if now > 0 {
		s.spareTarget = s.policySpare(0)
	}
	s.drainQueue()
	s.powerManage()

	// Keep ticking while there is anything left to simulate. Pending
	// counts live events only, so a backlog of cancelled timers cannot
	// keep the tick chain alive.
	if s.eng.Pending() > 0 || len(s.queue) > 0 {
		s.scheduleControlTick(now + s.cfg.ControlPeriod)
	}
	s.tickRan = true
}

func (s *simulator) onFailure(pm *cluster.PM) {
	if pm.State != cluster.PMOn {
		return
	}
	now := s.eng.Now()
	s.meter.Advance(now)
	delete(s.failEvent, pm.ID)
	s.res.Failures++
	s.inj.Fail(pm)
	s.cFailures.Inc()
	if s.tracing {
		s.emit("failure", obs.I("pm", int64(pm.ID)), obs.I("victims", int64(pm.VMCount())),
			obs.F("reliability", pm.Reliability))
	}
	s.logf("fail     PM%-5d (%d VMs to re-place, reliability now %.3f)", pm.ID, pm.VMCount(), pm.Reliability)
	pm.State = cluster.PMFailed

	// All hosted VMs are treated as new requests (Section III.C).
	// Unwind any migration holds touching this PM: holds owned by its
	// VMs (migrating in when the target failed), and holds whose source
	// is this PM (the in-flight VM lives elsewhere but its reservation
	// dies with the machine). The unwind runs in VM-ID order — ranging
	// the map directly would release reservations in nondeterministic
	// order, and when several holds share a source the intermediate
	// Used values (hence the scheme's probabilities) would depend on it.
	var unwind []cluster.VMID
	for id, hold := range s.holds {
		if hold.source == pm || pm.HasVM(id) {
			unwind = append(unwind, id)
		}
	}
	sort.Slice(unwind, func(i, j int) bool { return unwind[i] < unwind[j] })
	for _, id := range unwind {
		hold := s.holds[id]
		s.releaseHold(id, hold)
		if hold.vm.State == cluster.VMMigrating {
			hold.vm.State = cluster.VMRunning
		}
	}
	victims := pm.VMs()
	for _, vm := range victims {
		if vm.State == cluster.VMMigrating {
			vm.State = cluster.VMRunning // hold already unwound above
		}
		if ev, ok := s.lifeEvent[vm.ID]; ok {
			ev.Cancel()
			delete(s.lifeEvent, vm.ID)
		}
		if err := pm.Evict(vm); err != nil {
			panic(fmt.Sprintf("sim: failure eviction: %v", err))
		}
		// Progress is lost: the VM restarts from scratch elsewhere,
		// exactly as a re-submitted request would.
		vm.State = cluster.VMQueued
		if !s.tryPlace(vm) {
			s.enqueue(vm)
		}
	}
	if s.inj.RepairTime() > 0 {
		s.eng.ScheduleTag(now+s.inj.RepairTime(), Tag{Kind: evRepaired, Arg: int64(pm.ID)},
			func() { s.onRepaired(pm) })
	} else {
		pm.State = cluster.PMOff
	}
	s.consolidate()
}

func (s *simulator) onRepaired(pm *cluster.PM) {
	s.meter.Advance(s.eng.Now())
	if pm.State == cluster.PMFailed {
		pm.State = cluster.PMOff
	}
}

// --- helpers ---

func (s *simulator) armFailure(pm *cluster.PM) {
	if s.inj == nil {
		return
	}
	ttf := s.inj.SampleTimeToFailure()
	s.failEvent[pm.ID] = s.eng.ScheduleTag(s.eng.Now()+ttf, Tag{Kind: evFailure, Arg: int64(pm.ID)},
		func() { s.onFailure(pm) })
}

func (s *simulator) disarmFailure(pm *cluster.PM) {
	if ev, ok := s.failEvent[pm.ID]; ok {
		ev.Cancel()
		delete(s.failEvent, pm.ID)
	}
}

// drainQueue re-attempts placement for queued VMs in FIFO order.
func (s *simulator) drainQueue() {
	if len(s.queue) == 0 {
		return
	}
	var still []*cluster.VM
	for _, vm := range s.queue {
		if !s.tryPlace(vm) {
			still = append(still, vm)
		}
	}
	s.queue = still
	s.ensureBoots()
}

// consolidate runs the scheme's migration pass and tallies moves. Under
// the timed-migration model each move additionally holds the VM's
// resources on the source PM and parks the VM in the Migrating state until
// the transfer window elapses.
func (s *simulator) consolidate() {
	moves, err := s.cfg.Placer.Consolidate(s.ctx())
	if err != nil {
		panic(fmt.Sprintf("sim: consolidation failed: %v", err))
	}
	if len(moves) == 0 {
		return
	}
	s.res.Moves = append(s.res.Moves, moves...)
	s.cMigrates.Add(int64(len(moves)))
	s.countCellMoves(moves)
	for _, mv := range moves {
		if s.tracing {
			s.emit("migration", obs.I("vm", int64(mv.VM)), obs.I("from", int64(mv.From)),
				obs.I("to", int64(mv.To)), obs.F("gain", mv.Gain), obs.I("round", int64(mv.Round)))
		}
		s.logf("migrate  VM%-5d PM%d -> PM%d (gain %.3f, round %d)", mv.VM, mv.From, mv.To, mv.Gain, mv.Round)
	}
	if !s.cfg.TimedMigrations {
		return
	}
	for _, mv := range moves {
		s.beginTimedMigration(mv)
	}
}

// migrationHold records the source-side double occupancy of an in-flight
// migration.
type migrationHold struct {
	vm     *cluster.VM
	source *cluster.PM
	demand vector.V
	done   Event
}

// beginTimedMigration converts an already-applied (instant) move into a
// timed one: reserve the demand back on the source, mark the VM migrating,
// and schedule cutover at now + T_mig of the target class. If the source
// no longer has room for the hold (another placement raced into the freed
// space within this same consolidation pass), the migration degrades to
// instant — the resources genuinely moved, there is nothing left to hold.
func (s *simulator) beginTimedMigration(mv core.Move) {
	vm := s.findPlacedVM(mv.VM, mv.To)
	if vm == nil || vm.State != cluster.VMRunning {
		return
	}
	source := s.dc.PM(mv.From)
	if source == nil || (source.State != cluster.PMOn && source.State != cluster.PMBooting) {
		return
	}
	if err := source.Reserve(vm.Demand); err != nil {
		return
	}
	vm.State = cluster.VMMigrating
	hold := &migrationHold{vm: vm, source: source, demand: vm.Demand.Clone()}
	hold.done = s.eng.ScheduleTag(s.eng.Now()+s.dc.PM(mv.To).Class.MigrationTime,
		Tag{Kind: evMigCutover, Arg: int64(vm.ID)}, func() {
			s.finishTimedMigration(vm, hold)
		})
	s.holds[vm.ID] = hold
}

func (s *simulator) finishTimedMigration(vm *cluster.VM, hold *migrationHold) {
	s.meter.Advance(s.eng.Now())
	s.releaseHold(vm.ID, hold)
	if vm.State == cluster.VMMigrating {
		vm.State = cluster.VMRunning
	}
}

// releaseHold returns a hold's reservation, tolerating a source PM that
// failed (its accounting was reset when its VMs were evicted; reservations
// on a failed machine are moot but must still be unwound).
func (s *simulator) releaseHold(id cluster.VMID, hold *migrationHold) {
	if s.holds[id] != hold {
		return // already released
	}
	delete(s.holds, id)
	hold.done.Cancel()
	if hold.demand.LE(hold.source.Reserved()) {
		hold.source.Release(hold.demand)
	}
}

// findPlacedVM locates a VM by ID on the PM it was reported moved to.
func (s *simulator) findPlacedVM(id cluster.VMID, on cluster.PMID) *cluster.VM {
	pm := s.dc.PM(on)
	if pm == nil {
		return nil
	}
	for _, vm := range pm.VMs() {
		if vm.ID == id {
			return vm
		}
	}
	return nil
}

// powerManage enforces the active-server policy: keep exactly spareTarget
// idle PMs on (booting counts toward the target), shut down the rest, boot
// more if short. With a non-empty queue nothing is shut down.
//
// It runs only at control-period boundaries ("we periodically determine
// the active PMs", Section IV): enforcing it after every event makes the
// fleet thrash — consolidation empties a PM, it powers down, and the next
// arrival minutes later pays a full boot delay. An idle machine therefore
// survives at most one control period.
func (s *simulator) powerManage() {
	if len(s.queue) > 0 {
		return
	}
	var idle []*cluster.PM
	booting := 0
	for _, pm := range s.dc.PMs() {
		switch {
		case pm.Idle():
			idle = append(idle, pm)
		case pm.State == cluster.PMBooting:
			booting++
		}
	}
	have := len(idle) + booting
	switch {
	case have > s.spareTarget:
		// Shut down the least efficient idle machines first (highest
		// idle power per minimal-VM slot).
		excess := have - s.spareTarget
		rmin := s.dc.RMinShared()
		sort.SliceStable(idle, func(i, j int) bool {
			return idleCost(idle[i], rmin) > idleCost(idle[j], rmin)
		})
		for _, pm := range idle {
			if excess <= 0 {
				break
			}
			s.shutdownPM(pm)
			excess--
		}
	case have < s.spareTarget:
		needed := s.spareTarget - have
		for _, pm := range s.bootCandidates() {
			if needed <= 0 {
				break
			}
			s.bootPM(pm)
			needed--
		}
	}
}

// meanNonIdleUtilization averages the joint utilization over PMs that
// host at least one VM, or 0 when none do.
func (s *simulator) meanNonIdleUtilization() float64 {
	sum, n := 0.0, 0
	for _, pm := range s.dc.PMs() {
		if (pm.State == cluster.PMOn || pm.State == cluster.PMBooting) && pm.VMCount() > 0 {
			sum += pm.Utilization()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// idleCost ranks idle PMs for shutdown: watts of idle draw per minimal-VM
// slot; higher is shut down first.
func idleCost(pm *cluster.PM, rmin vector.V) float64 {
	w := pm.Class.MaxMinimalVMs(rmin)
	if w == 0 {
		return math.Inf(1)
	}
	return pm.Class.IdlePower / float64(w)
}

func (s *simulator) finalizeResult() {
	sum := &s.res.Summary
	sum.Scheme = s.res.Scheme
	sum.TotalEnergyKWh = power.KWh(s.meter.TotalEnergy())
	sum.MeanActivePMs = s.res.ActivePMs.Mean()
	sum.PeakActivePMs = s.res.ActivePMs.Max()
	sum.Migrations = len(s.res.Moves)
	sum.Boots = s.boots
	if len(s.waits) > 0 {
		var tot float64
		for _, w := range s.waits {
			tot += w
		}
		sum.MeanWaitSeconds = tot / float64(len(s.waits))
		sum.QueuedFraction = float64(s.queuedCount) / float64(len(s.waits))
		sum.WaitP50 = stats.Percentile(s.waits, 50)
		sum.WaitP95 = stats.Percentile(s.waits, 95)
		sum.WaitP99 = stats.Percentile(s.waits, 99)
	}

	s.res.EnergyKWh = metrics.NewSeries(s.res.Scheme, s.cfg.MeterBin)
	for _, j := range s.meter.Bins() {
		s.res.EnergyKWh.Append(power.KWh(j))
	}

	s.res.EnergyByClassKWh = make(map[string]float64)
	s.res.PMEnergyKWh = make(map[cluster.PMID]float64, s.dc.Size())
	for _, pm := range s.dc.PMs() {
		kwh := power.KWh(s.meter.PMEnergy(pm.ID))
		s.res.EnergyByClassKWh[pm.Class.Name] += kwh
		s.res.PMEnergyKWh[pm.ID] = kwh
	}
}
