package metrics

import (
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("x", 3600)
	s.Append(1)
	s.Append(2)
	s.Append(6)
	if s.Len() != 3 || s.Sum() != 9 || s.Mean() != 3 || s.Max() != 6 {
		t.Errorf("series stats wrong: %+v", s)
	}
	if s.At(1) != 2 || s.At(-1) != 0 || s.At(99) != 0 {
		t.Error("At out-of-range handling wrong")
	}
}

func TestSeriesEmptyStats(t *testing.T) {
	s := NewSeries("x", 1)
	if s.Mean() != 0 || s.Max() != 0 || s.Sum() != 0 {
		t.Error("empty series stats should be 0")
	}
}

func TestNewSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSeries("x", 0)
}

func TestDownsample(t *testing.T) {
	s := NewSeries("hourly", 3600)
	for i := 1; i <= 5; i++ {
		s.Append(float64(i))
	}
	d := s.Downsample(2)
	if d.Step != 7200 {
		t.Errorf("step = %g", d.Step)
	}
	want := []float64{3, 7, 5}
	if len(d.Values) != 3 {
		t.Fatalf("values = %v", d.Values)
	}
	for i, v := range want {
		if d.Values[i] != v {
			t.Errorf("down[%d] = %g, want %g", i, d.Values[i], v)
		}
	}
}

func TestDownsamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewSeries("x", 1).Downsample(0)
}

func TestTableCSV(t *testing.T) {
	a := NewSeries("first-fit", 3600)
	b := NewSeries("dynamic", 3600)
	a.Append(10)
	a.Append(12)
	b.Append(7) // shorter series pads with 0
	tab := Table{TimeLabel: "hour", Series: []*Series{a, b}}
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "hour,first-fit,dynamic\n0,10,7\n1,12,0\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableCSVFloats(t *testing.T) {
	a := NewSeries("e", 1)
	a.Append(1.5)
	var sb strings.Builder
	if err := (&Table{TimeLabel: "t", Series: []*Series{a}}).WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1.500") {
		t.Errorf("CSV = %q", sb.String())
	}
}

func TestTableText(t *testing.T) {
	a := NewSeries("dynamic", 3600)
	a.Append(42)
	var sb strings.Builder
	if err := (&Table{TimeLabel: "hour", Series: []*Series{a}}).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "dynamic") || !strings.Contains(out, "42") {
		t.Errorf("text table = %q", out)
	}
}

func TestEmptyTableErrors(t *testing.T) {
	var sb strings.Builder
	if err := (&Table{}).WriteCSV(&sb); err == nil {
		t.Error("empty CSV accepted")
	}
	if err := (&Table{}).WriteText(&sb); err == nil {
		t.Error("empty text accepted")
	}
}

func TestWriteSummariesSortsByEnergy(t *testing.T) {
	sums := []Summary{
		{Scheme: "first-fit", TotalEnergyKWh: 300},
		{Scheme: "dynamic", TotalEnergyKWh: 200, QueuedFraction: 0.03},
		{Scheme: "best-fit", TotalEnergyKWh: 250},
	}
	var sb strings.Builder
	if err := WriteSummaries(&sb, sums); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	di := strings.Index(out, "dynamic")
	bi := strings.Index(out, "best-fit")
	fi := strings.Index(out, "first-fit")
	if !(di < bi && bi < fi) {
		t.Errorf("summaries not energy-sorted:\n%s", out)
	}
	if !strings.Contains(out, "3.00%") {
		t.Errorf("queued%% missing:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	s := NewSeries("x", 1)
	for _, v := range []float64{0, 2, 4, 8} {
		s.Append(v)
	}
	spark := []rune(s.Sparkline())
	if len(spark) != 4 {
		t.Fatalf("sparkline runes = %d", len(spark))
	}
	// Monotone values map to non-decreasing block heights, ending at max.
	for i := 1; i < len(spark); i++ {
		if spark[i] < spark[i-1] {
			t.Errorf("sparkline not monotone: %q", string(spark))
		}
	}
	if spark[3] != '█' {
		t.Errorf("max sample rune = %q, want full block", string(spark[3]))
	}
	if spark[0] != '▁' {
		t.Errorf("zero sample rune = %q, want lowest block", string(spark[0]))
	}
}

func TestSparklineEdgeCases(t *testing.T) {
	if got := NewSeries("e", 1).Sparkline(); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	z := NewSeries("z", 1)
	z.Append(0)
	z.Append(0)
	if got := z.Sparkline(); got != "▁▁" {
		t.Errorf("all-zero sparkline = %q", got)
	}
	n := NewSeries("n", 1)
	n.Append(-5)
	n.Append(10)
	if []rune(n.Sparkline())[0] != '▁' {
		t.Error("negative sample should clamp to the lowest block")
	}
}
