// Package metrics collects and renders the time series the experiment
// harness reports: hourly active-server counts, hourly/daily power, QoS
// statistics, and run summaries. Output formats are CSV (for plotting) and
// aligned text tables (for terminal inspection), matching what the paper's
// Figures 3-5 plot.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is a named, regularly sampled time series. Sample i covers the
// interval [i*Step, (i+1)*Step) seconds.
type Series struct {
	Name   string
	Step   float64
	Values []float64
}

// NewSeries creates an empty series with the given sampling step.
func NewSeries(name string, step float64) *Series {
	if step <= 0 {
		panic(fmt.Sprintf("metrics: step must be positive, got %g", step))
	}
	return &Series{Name: name, Step: step}
}

// Append adds the next sample.
func (s *Series) Append(v float64) { s.Values = append(s.Values, v) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Values) }

// At returns sample i, or 0 when out of range (simplifies ragged
// comparisons between schemes).
func (s *Series) At(i int) float64 {
	if i < 0 || i >= len(s.Values) {
		return 0
	}
	return s.Values[i]
}

// Sum returns the sum of all samples.
func (s *Series) Sum() float64 {
	var t float64
	for _, v := range s.Values {
		t += v
	}
	return t
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Sum() / float64(len(s.Values))
}

// Max returns the largest sample, or 0 for an empty series.
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.Values {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Downsample aggregates groups of n samples by summing, producing a series
// with step n*Step (hourly -> daily with n = 24).
func (s *Series) Downsample(n int) *Series {
	if n <= 0 {
		panic(fmt.Sprintf("metrics: downsample factor must be positive, got %d", n))
	}
	out := NewSeries(s.Name, s.Step*float64(n))
	for i, v := range s.Values {
		if i%n == 0 {
			out.Values = append(out.Values, 0)
		}
		out.Values[len(out.Values)-1] += v
	}
	return out
}

// Table renders multiple series side by side.
type Table struct {
	// TimeLabel heads the first column ("hour", "day").
	TimeLabel string
	Series    []*Series
}

// WriteCSV emits "time,name1,name2,..." rows. Times are in units of the
// first series' step.
func (t *Table) WriteCSV(w io.Writer) error {
	if len(t.Series) == 0 {
		return fmt.Errorf("metrics: empty table")
	}
	header := make([]string, 0, len(t.Series)+1)
	header = append(header, t.TimeLabel)
	rows := 0
	for _, s := range t.Series {
		header = append(header, s.Name)
		if s.Len() > rows {
			rows = s.Len()
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		fields := make([]string, 0, len(t.Series)+1)
		fields = append(fields, fmt.Sprintf("%d", i))
		for _, s := range t.Series {
			fields = append(fields, formatValue(s.At(i)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(fields, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteText emits an aligned, human-readable table.
func (t *Table) WriteText(w io.Writer) error {
	if len(t.Series) == 0 {
		return fmt.Errorf("metrics: empty table")
	}
	rows := 0
	for _, s := range t.Series {
		if s.Len() > rows {
			rows = s.Len()
		}
	}
	if _, err := fmt.Fprintf(w, "%-6s", t.TimeLabel); err != nil {
		return err
	}
	for _, s := range t.Series {
		if _, err := fmt.Fprintf(w, " %14s", s.Name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := 0; i < rows; i++ {
		if _, err := fmt.Fprintf(w, "%-6d", i); err != nil {
			return err
		}
		for _, s := range t.Series {
			if _, err := fmt.Fprintf(w, " %14s", formatValue(s.At(i))); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// sparkRunes are the eight block heights a sparkline quantizes into.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a one-line unicode chart, scaled to the
// series' own maximum — the quick-look rendering cmd/experiments prints
// next to each Figure 3/4 series.
func (s *Series) Sparkline() string {
	if len(s.Values) == 0 {
		return ""
	}
	max := s.Max()
	out := make([]rune, len(s.Values))
	for i, v := range s.Values {
		if max <= 0 || v <= 0 {
			out[i] = sparkRunes[0]
			continue
		}
		idx := int(v / max * float64(len(sparkRunes)))
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		out[i] = sparkRunes[idx]
	}
	return string(out)
}

// Summary aggregates one simulation run's outcome; the experiment harness
// compares Summaries across schemes.
type Summary struct {
	Scheme string

	// TotalEnergyKWh is the week's total energy.
	TotalEnergyKWh float64

	// MeanActivePMs / PeakActivePMs summarize the hourly active-server
	// series (Figure 3).
	MeanActivePMs float64
	PeakActivePMs float64

	// Migrations is the number of live migrations executed.
	Migrations int

	// Boots counts PM power-on transitions.
	Boots int

	// VMsCompleted / VMsQueuedLong track QoS: QueuedFraction is the
	// share of requests that waited in the queue (the paper targets
	// < 5%).
	VMsCompleted   int
	QueuedFraction float64

	// MeanWaitSeconds is the average queue wait across all requests.
	MeanWaitSeconds float64

	// WaitP50/P95/P99 are queue-wait percentiles in seconds; the tail
	// is what the spare controller's QoS bound actually protects.
	WaitP50 float64
	WaitP95 float64
	WaitP99 float64

	// Rejected counts requests no PM class could ever satisfy.
	Rejected int
}

// WriteSummaries renders a comparison table of run summaries, sorted by
// total energy ascending (winner first).
func WriteSummaries(w io.Writer, sums []Summary) error {
	ordered := append([]Summary(nil), sums...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].TotalEnergyKWh < ordered[j].TotalEnergyKWh
	})
	if _, err := fmt.Fprintf(w, "%-12s %12s %10s %10s %11s %8s %9s %10s\n",
		"scheme", "energy(kWh)", "meanPMs", "peakPMs", "migrations", "boots", "queued%", "meanWait(s)"); err != nil {
		return err
	}
	for _, s := range ordered {
		if _, err := fmt.Fprintf(w, "%-12s %12.1f %10.1f %10.0f %11d %8d %8.2f%% %10.1f\n",
			s.Scheme, s.TotalEnergyKWh, s.MeanActivePMs, s.PeakActivePMs,
			s.Migrations, s.Boots, s.QueuedFraction*100, s.MeanWaitSeconds); err != nil {
			return err
		}
	}
	return nil
}
