// Package binpack provides offline multi-dimensional packing over a
// heterogeneous fleet: the static-consolidation formulation the paper's
// Related Work discusses ("the VM management problem is often formulated
// as N-dimensional bin packing"). The experiment harness uses it as an
// oracle: given the exact set of VMs alive at some instant, how few PMs
// could possibly host them? Comparing a scheme's actual active-server
// count against this bound measures consolidation quality directly,
// independent of energy models.
package binpack

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/vector"
)

// Item is one VM-sized demand to pack.
type Item struct {
	// ID labels the item in assignments (VM ID in practice).
	ID int

	// Demand is the K-dimensional resource requirement.
	Demand vector.V
}

// Bin describes one available machine.
type Bin struct {
	// ID labels the bin (PM ID in practice).
	ID int

	// Capacity is the machine's K-dimensional capacity.
	Capacity vector.V

	// Weight orders bins for opening: lower-weight bins open first.
	// The experiment harness uses per-slot active power so the packing
	// prefers efficient machines, mirroring the boot preference of the
	// simulator.
	Weight float64
}

// Result is a completed packing.
type Result struct {
	// BinsUsed is the number of bins that received at least one item.
	BinsUsed int

	// Assignment maps item ID to bin ID.
	Assignment map[int]int

	// Unplaced lists items no bin could hold (individually infeasible
	// or capacity exhausted).
	Unplaced []Item
}

// FirstFitDecreasing packs items into bins with the classic FFD heuristic
// generalized to vectors: items sorted by decreasing scalarized size, each
// placed into the first open bin with room, opening bins in weight order
// when needed. FFD is within 11/9 OPT + 1 for one dimension and a strong
// practical heuristic for few dimensions; with K = 2 it serves as a tight
// upper bound on the optimal PM count (so OPT <= FFD, and FFD itself is a
// valid "a real packing exists" certificate).
func FirstFitDecreasing(items []Item, bins []Bin) Result {
	ordered := append([]Item(nil), items...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return scalarSize(ordered[i].Demand, bins) > scalarSize(ordered[j].Demand, bins)
	})
	order := append([]Bin(nil), bins...)
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].Weight != order[j].Weight {
			return order[i].Weight < order[j].Weight
		}
		return order[i].ID < order[j].ID
	})

	used := make([]vector.V, len(order))
	open := 0
	res := Result{Assignment: make(map[int]int, len(items))}

	for _, item := range ordered {
		placed := false
		for b := 0; b < open && !placed; b++ {
			if item.Demand.Fits(used[b], order[b].Capacity) {
				used[b].AddInPlace(item.Demand)
				res.Assignment[item.ID] = order[b].ID
				placed = true
			}
		}
		for !placed && open < len(order) {
			b := open
			used[b] = vector.Zero(order[b].Capacity.Dim())
			open++
			if item.Demand.Fits(used[b], order[b].Capacity) {
				used[b].AddInPlace(item.Demand)
				res.Assignment[item.ID] = order[b].ID
				placed = true
			}
		}
		if !placed {
			res.Unplaced = append(res.Unplaced, item)
		}
	}
	for b := 0; b < open; b++ {
		if !used[b].IsZero() {
			res.BinsUsed++
		}
	}
	return res
}

// scalarSize scalarizes a demand as its largest fraction of the biggest
// bin's capacity — the standard multi-dim FFD ordering key.
func scalarSize(d vector.V, bins []Bin) float64 {
	if len(bins) == 0 {
		return d.Sum()
	}
	maxCap := bins[0].Capacity.Clone()
	for _, b := range bins[1:] {
		for k := range maxCap {
			if b.Capacity[k] > maxCap[k] {
				maxCap[k] = b.Capacity[k]
			}
		}
	}
	m := 0.0
	for k := range d {
		if maxCap[k] <= vector.Epsilon {
			continue
		}
		if f := d[k] / maxCap[k]; f > m {
			m = f
		}
	}
	return m
}

// LowerBound returns a lower bound on the bins needed for items: for each
// resource dimension, greedily cover the total demand with the largest
// bins first and take the worst dimension. No packing can use fewer bins
// (capacity alone forbids it), so LowerBound <= OPT <= FFD.
func LowerBound(items []Item, bins []Bin) int {
	if len(items) == 0 {
		return 0
	}
	dim := items[0].Demand.Dim()
	total := vector.Zero(dim)
	for _, it := range items {
		total.AddInPlace(it.Demand)
	}
	bound := 0
	for k := 0; k < dim; k++ {
		caps := make([]float64, 0, len(bins))
		for _, b := range bins {
			caps = append(caps, b.Capacity[k])
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(caps)))
		need, covered := 0, 0.0
		for _, c := range caps {
			if covered >= total[k]-vector.Epsilon {
				break
			}
			covered += c
			need++
		}
		if covered < total[k]-vector.Epsilon {
			need = len(bins) + 1 // infeasible even with every bin
		}
		if need > bound {
			bound = need
		}
	}
	return bound
}

// FleetBins converts a datacenter's PMs into bins weighted by per-slot
// active power (most efficient first), matching the simulator's boot
// preference.
func FleetBins(dc *cluster.Datacenter) []Bin {
	rmin := dc.RMinShared()
	bins := make([]Bin, 0, dc.Size())
	for _, pm := range dc.PMs() {
		w := math.Inf(1)
		if slots := pm.Class.MaxMinimalVMs(rmin); slots > 0 {
			w = pm.Class.ActivePower / float64(slots)
		}
		bins = append(bins, Bin{ID: int(pm.ID), Capacity: pm.Class.Capacity.Clone(), Weight: w})
	}
	return bins
}

// Validate checks that a result's assignment respects bin capacities —
// used by tests and by the oracle experiment's self-check.
func Validate(items []Item, bins []Bin, res Result) error {
	capOf := make(map[int]vector.V, len(bins))
	for _, b := range bins {
		capOf[b.ID] = b.Capacity
	}
	load := make(map[int]vector.V)
	for _, it := range items {
		binID, ok := res.Assignment[it.ID]
		if !ok {
			continue
		}
		cap, exists := capOf[binID]
		if !exists {
			return fmt.Errorf("binpack: item %d assigned to unknown bin %d", it.ID, binID)
		}
		if load[binID] == nil {
			load[binID] = vector.Zero(cap.Dim())
		}
		load[binID].AddInPlace(it.Demand)
	}
	for id, l := range load {
		if !l.LE(capOf[id]) {
			return fmt.Errorf("binpack: bin %d overfilled: %v > %v", id, l, capOf[id])
		}
	}
	if placed := len(res.Assignment); placed+len(res.Unplaced) != len(items) {
		return fmt.Errorf("binpack: %d placed + %d unplaced != %d items", placed, len(res.Unplaced), len(items))
	}
	return nil
}
