package binpack

import (
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/stats"
	"repro/internal/vector"
)

func uniformBins(n int, cap ...float64) []Bin {
	bins := make([]Bin, n)
	for i := range bins {
		bins[i] = Bin{ID: i, Capacity: vector.New(cap...), Weight: 1}
	}
	return bins
}

func TestFFDSimplePacking(t *testing.T) {
	// 8 unit items into bins of 4: exactly 2 bins.
	items := make([]Item, 8)
	for i := range items {
		items[i] = Item{ID: i, Demand: vector.New(1, 1)}
	}
	res := FirstFitDecreasing(items, uniformBins(5, 4, 4))
	if res.BinsUsed != 2 {
		t.Errorf("bins = %d, want 2", res.BinsUsed)
	}
	if len(res.Unplaced) != 0 {
		t.Errorf("unplaced = %v", res.Unplaced)
	}
	if err := Validate(items, uniformBins(5, 4, 4), res); err != nil {
		t.Error(err)
	}
}

func TestFFDDecreasingBeatsNaiveOrder(t *testing.T) {
	// Classic FFD win: items 6,5,4,3,2,2 into bins of 11.
	sizes := []float64{2, 6, 3, 5, 2, 4}
	items := make([]Item, len(sizes))
	for i, s := range sizes {
		items[i] = Item{ID: i, Demand: vector.New(s)}
	}
	bins := uniformBins(6, 11)
	res := FirstFitDecreasing(items, bins)
	if res.BinsUsed != 2 { // 6+5, 4+3+2+2
		t.Errorf("bins = %d, want 2", res.BinsUsed)
	}
}

func TestFFDMultiDimensional(t *testing.T) {
	// CPU-heavy and memory-heavy items must interleave.
	items := []Item{
		{ID: 1, Demand: vector.New(6, 1)},
		{ID: 2, Demand: vector.New(1, 6)},
		{ID: 3, Demand: vector.New(6, 1)},
		{ID: 4, Demand: vector.New(1, 6)},
	}
	bins := uniformBins(4, 8, 8)
	res := FirstFitDecreasing(items, bins)
	if res.BinsUsed != 2 {
		t.Errorf("bins = %d, want 2 (one cpu-heavy + one mem-heavy each)", res.BinsUsed)
	}
	if err := Validate(items, bins, res); err != nil {
		t.Error(err)
	}
}

func TestFFDHeterogeneousPrefersLowWeight(t *testing.T) {
	bins := []Bin{
		{ID: 0, Capacity: vector.New(4, 4), Weight: 10},
		{ID: 1, Capacity: vector.New(8, 8), Weight: 1},
	}
	items := []Item{{ID: 1, Demand: vector.New(2, 2)}}
	res := FirstFitDecreasing(items, bins)
	if res.Assignment[1] != 1 {
		t.Errorf("item packed into bin %d, want the low-weight bin 1", res.Assignment[1])
	}
}

func TestFFDUnplaceable(t *testing.T) {
	items := []Item{{ID: 1, Demand: vector.New(100, 1)}}
	res := FirstFitDecreasing(items, uniformBins(3, 8, 8))
	if len(res.Unplaced) != 1 || res.BinsUsed != 0 {
		t.Errorf("unplaced = %v, bins = %d", res.Unplaced, res.BinsUsed)
	}
}

func TestFFDEmpty(t *testing.T) {
	res := FirstFitDecreasing(nil, uniformBins(2, 4, 4))
	if res.BinsUsed != 0 || len(res.Unplaced) != 0 {
		t.Errorf("empty pack = %+v", res)
	}
}

func TestLowerBound(t *testing.T) {
	// Total demand (10, 2) into (4,4) bins: CPU needs ceil coverage of 3
	// bins, memory 1 -> bound 3.
	items := []Item{
		{ID: 1, Demand: vector.New(4, 1)},
		{ID: 2, Demand: vector.New(4, 0.5)},
		{ID: 3, Demand: vector.New(2, 0.5)},
	}
	if got := LowerBound(items, uniformBins(5, 4, 4)); got != 3 {
		t.Errorf("LowerBound = %d, want 3", got)
	}
	if got := LowerBound(nil, uniformBins(5, 4, 4)); got != 0 {
		t.Errorf("empty LowerBound = %d", got)
	}
}

func TestLowerBoundInfeasible(t *testing.T) {
	items := []Item{{ID: 1, Demand: vector.New(100, 1)}}
	bins := uniformBins(2, 8, 8)
	if got := LowerBound(items, bins); got <= len(bins) {
		t.Errorf("infeasible bound = %d, want > %d", got, len(bins))
	}
}

func TestFleetBins(t *testing.T) {
	dc := cluster.TableIIFleet()
	bins := FleetBins(dc)
	if len(bins) != 100 {
		t.Fatalf("bins = %d", len(bins))
	}
	// Fast bins (50 W/slot) must be lighter than slow bins (75 W/slot).
	var fastW, slowW float64
	for _, b := range bins {
		if dc.PM(cluster.PMID(b.ID)).Class.Name == "fast" {
			fastW = b.Weight
		} else {
			slowW = b.Weight
		}
	}
	if !(fastW < slowW) {
		t.Errorf("fast weight %g not below slow %g", fastW, slowW)
	}
}

func TestValidateCatchesOverfill(t *testing.T) {
	items := []Item{
		{ID: 1, Demand: vector.New(3, 3)},
		{ID: 2, Demand: vector.New(3, 3)},
	}
	bins := uniformBins(2, 4, 4)
	bad := Result{Assignment: map[int]int{1: 0, 2: 0}}
	if err := Validate(items, bins, bad); err == nil {
		t.Error("overfill not detected")
	}
	unknown := Result{Assignment: map[int]int{1: 99, 2: 0}}
	if err := Validate(items, bins, unknown); err == nil {
		t.Error("unknown bin not detected")
	}
	missing := Result{Assignment: map[int]int{1: 0}}
	if err := Validate(items, bins, missing); err == nil {
		t.Error("item-count mismatch not detected")
	}
}

// Property: FFD results are always valid packings and never beat the lower
// bound.
func TestQuickFFDSoundness(t *testing.T) {
	r := stats.NewRand(5)
	f := func(raw []struct{ C, M uint8 }) bool {
		items := make([]Item, 0, len(raw))
		for i, x := range raw {
			d := vector.New(float64(x.C%4)+0.5, float64(x.M%4)*0.5+0.25)
			items = append(items, Item{ID: i, Demand: d})
		}
		nBins := len(items) + r.Intn(3) + 1
		bins := uniformBins(nBins, 8, 8)
		res := FirstFitDecreasing(items, bins)
		if err := Validate(items, bins, res); err != nil {
			return false
		}
		if len(res.Unplaced) > 0 {
			return false // every item fits an empty (8,8) bin
		}
		return res.BinsUsed >= LowerBound(items, bins)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkFFDTableIIFleet(b *testing.B) {
	dc := cluster.TableIIFleet()
	bins := FleetBins(dc)
	r := stats.NewRand(1)
	items := make([]Item, 300)
	for i := range items {
		items[i] = Item{ID: i, Demand: vector.New(1, float64(r.Intn(8)+1)*0.25)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FirstFitDecreasing(items, bins)
	}
}
